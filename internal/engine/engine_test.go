package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/solver"
)

func testInstance(tb testing.TB, n, m int) *solver.Instance {
	tb.Helper()
	g := gen.Random(n, m, 1<<10, gen.UWD, 7)
	return solver.NewInstance(g, par.NewExec(2))
}

// gatedSolver is an injectable solver that blocks until released, so tests
// can hold a solve in flight deterministically.
type gatedSolver struct {
	started chan struct{} // closed (once) when the first solve begins
	release chan struct{} // solve returns once this is closed
	once    sync.Once
}

func (s *gatedSolver) register() solver.Solver {
	return solver.Solver{
		Name: "gated",
		Solve: func(in *solver.Instance, sources []int32) []int64 {
			s.once.Do(func() { close(s.started) })
			<-s.release
			out := make([]int64, in.G.NumVertices())
			for i := range out {
				out[i] = graph.Inf
			}
			for _, src := range sources {
				out[src] = 0
			}
			return out
		},
	}
}

func newGated() *gatedSolver {
	return &gatedSolver{started: make(chan struct{}), release: make(chan struct{})}
}

// --- pooled execution correctness -----------------------------------------

// Every pooled fast path must match the registry's fresh-allocation solve,
// including across reuse, and pooling on/off must agree with each other.
func TestQueryPooledMatchesFresh(t *testing.T) {
	in := testInstance(t, 300, 1200)
	e := New(in, Config{})
	fresh := New(in, Config{DisablePool: true})

	for _, name := range []string{"thorup", "dijkstra", "delta", "mlb"} {
		reg, _ := solver.ByName(name)
		for _, srcs := range [][]int32{{0}, {5}, {1, 100, 299}, {5}} { // repeat 5: pool reuse
			want := reg.Solve(in, srcs)
			got, via, err := e.Query(context.Background(), Request{Sources: srcs, Solver: name})
			if err != nil {
				t.Fatalf("%s %v: %v", name, srcs, err)
			}
			gotFresh, _, err := fresh.Query(context.Background(), Request{Sources: srcs, Solver: name})
			if err != nil {
				t.Fatalf("%s %v (no pool): %v", name, srcs, err)
			}
			_ = via
			for v := range want {
				if got.Dist[v] != want[v] {
					t.Fatalf("%s %v: dist[%d] = %d, want %d", name, srcs, v, got.Dist[v], want[v])
				}
				if gotFresh.Dist[v] != want[v] {
					t.Fatalf("%s %v (no pool): dist[%d] = %d, want %d", name, srcs, v, gotFresh.Dist[v], want[v])
				}
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	in := testInstance(t, 50, 200)
	e := New(in, Config{})
	cases := []Request{
		{Sources: nil},
		{Sources: []int32{-1}},
		{Sources: []int32{50}},
		{Sources: []int32{0}, Solver: "nope"},
		{Sources: []int32{0}, Solver: "bfs"}, // weighted graph: BFS inapplicable
	}
	for _, req := range cases {
		if _, _, err := e.Query(context.Background(), req); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("req %+v: err = %v, want ErrBadQuery", req, err)
		}
	}
}

// Equivalent source sets (order, duplicates) must share one cache entry.
func TestQueryCanonicalSourceSet(t *testing.T) {
	in := testInstance(t, 100, 400)
	e := New(in, Config{CacheEntries: 8})
	r1, via, err := e.Query(context.Background(), Request{Sources: []int32{9, 3, 3, 70}, Solver: "dijkstra"})
	if err != nil || via != ViaSolve {
		t.Fatalf("first query: via=%v err=%v", via, err)
	}
	r2, via, err := e.Query(context.Background(), Request{Sources: []int32{70, 9, 3}, Solver: "dijkstra"})
	if err != nil || via != ViaCache {
		t.Fatalf("permuted query: via=%v err=%v, want cache hit", via, err)
	}
	if r1 != r2 {
		t.Fatal("permuted source set did not share the cached result")
	}
}

// --- policy ----------------------------------------------------------------

func TestPolicySelection(t *testing.T) {
	weighted := testInstance(t, 200, 800) // maxW 1024, avgDeg 8 -> delta 128
	e := New(weighted, Config{})
	pick := func(e *Engine, name string, srcs []int32) string {
		t.Helper()
		got, err := e.pickSolver(name, srcs, true)
		if err != nil {
			t.Fatalf("pickSolver(%q, %v): %v", name, srcs, err)
		}
		return got
	}
	if got := pick(e, "", []int32{3}); got != "delta" {
		t.Fatalf("weighted single-source auto = %s, want delta", got)
	}
	if got := pick(e, "auto", []int32{1, 2}); got != "thorup" {
		t.Fatalf("multi-source auto = %s, want thorup", got)
	}
	if got := pick(e, "mlb", []int32{3}); got != "mlb" {
		t.Fatalf("explicit override = %s, want mlb", got)
	}

	unitG := gen.Random(200, 800, 1, gen.UWD, 7)
	if unitG.MaxWeight() != 1 {
		t.Fatalf("unit graph maxW = %d", unitG.MaxWeight())
	}
	eu := New(solver.NewInstance(unitG, par.NewExec(2)), Config{})
	if got := pick(eu, "", []int32{3}); got != "bfs" {
		t.Fatalf("unit-weight auto = %s, want bfs", got)
	}

	// delta = 1 (max weight 1... use a tiny-weight graph where C/d floors to 1)
	dense := gen.Random(64, 1024, 4, gen.UWD, 7) // avgDeg 32 > maxW 4 -> delta 1
	ed := New(solver.NewInstance(dense, par.NewExec(2)), Config{})
	if ed.unitW {
		t.Skip("dense graph happened to be unit-weight")
	}
	if got := pick(ed, "", []int32{3}); got != "thorup" {
		t.Fatalf("delta=1 single-source auto = %s, want thorup", got)
	}
}

// --- LRU cache -------------------------------------------------------------

func cacheRes(key string, n int) *Result {
	return &Result{key: key, Dist: make([]int64, n)}
}

func TestLRUEvictionOrder(t *testing.T) {
	var ev obs.Counter
	c := newLRU(2, 0, &ev)
	c.add("A", cacheRes("A", 4))
	c.add("B", cacheRes("B", 4))
	if _, ok := c.get("A"); !ok { // touch A: B becomes least recently used
		t.Fatal("A missing")
	}
	c.add("C", cacheRes("C", 4))
	if _, ok := c.get("B"); ok {
		t.Fatal("B should have been evicted (least recently used)")
	}
	for _, k := range []string{"A", "C"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if ev.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", ev.Value())
	}
}

func TestLRUByteBudget(t *testing.T) {
	var ev obs.Counter
	per := entryBytes("K1", cacheRes("K1", 100)) // all keys same length/size
	c := newLRU(100, 3*per, &ev)
	for i := 1; i <= 4; i++ {
		k := fmt.Sprintf("K%d", i)
		c.add(k, cacheRes(k, 100))
	}
	entries, bytes := c.size()
	if entries != 3 || bytes != 3*per {
		t.Fatalf("size = (%d, %d), want (3, %d)", entries, bytes, 3*per)
	}
	if _, ok := c.get("K1"); ok {
		t.Fatal("K1 (oldest) should have been evicted by the byte budget")
	}
	if ev.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", ev.Value())
	}

	// Growing an entry (JSON materialization) re-enforces the budget, evicting
	// older entries but keeping the grown one.
	c.grow(c.index["K3"].Value.(*cacheEntry).res, 2*per)
	if _, ok := c.get("K3"); !ok {
		t.Fatal("grown entry K3 should survive its own growth")
	}
	if entries, _ := c.size(); entries != 1 {
		t.Fatalf("after grow: %d entries, want 1 (K3 alone fills the budget)", entries)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0, 0, &obs.Counter{})
	c.add("A", cacheRes("A", 4))
	if _, ok := c.get("A"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if entries, bytes := c.size(); entries != 0 || bytes != 0 {
		t.Fatal("disabled cache reports non-zero size")
	}
}

// --- singleflight ----------------------------------------------------------

// N concurrent identical queries must execute the solver exactly once: one
// leader solves, every other caller joins that flight.
func TestSingleflightExactlyOneSolve(t *testing.T) {
	in := testInstance(t, 100, 400)
	gs := newGated()
	e := New(in, Config{CacheEntries: 8, Solvers: append(solver.All(), gs.register())})

	const N = 8
	req := Request{Sources: []int32{42}, Solver: "gated"}
	vias := make([]Via, N)
	errs := make([]error, N)
	var wg sync.WaitGroup
	wg.Add(N)
	for i := 0; i < N; i++ {
		go func(i int) {
			defer wg.Done()
			_, vias[i], errs[i] = e.Query(context.Background(), req)
		}(i)
	}
	<-gs.started
	// Each caller counts a cache miss before entering the flight group; once
	// all N misses are visible, every caller has passed the cache and joined
	// the held flight, so releasing now proves true concurrent coalescing.
	for e.Counter("cache_misses") < N {
	}
	close(gs.release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if solves := e.Counter("solves"); solves != 1 {
		t.Fatalf("solves = %d, want exactly 1", solves)
	}
	if runs := e.SolverRuns()["gated"]; runs != 1 {
		t.Fatalf("gated runs = %d, want exactly 1", runs)
	}
	var solve, dedup int
	for _, v := range vias {
		switch v {
		case ViaSolve:
			solve++
		case ViaDedup:
			dedup++
		}
	}
	if solve != 1 || dedup != N-1 {
		t.Fatalf("vias: %d solve + %d dedup, want 1 + %d", solve, dedup, N-1)
	}
}

// A waiter whose context expires stops waiting; the leader still completes
// and caches, so a later query hits the cache.
func TestSingleflightWaiterCancellation(t *testing.T) {
	in := testInstance(t, 100, 400)
	gs := newGated()
	e := New(in, Config{CacheEntries: 8, Solvers: append(solver.All(), gs.register())})

	req := Request{Sources: []int32{7}, Solver: "gated"}
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := e.Query(context.Background(), req)
		leaderDone <- err
	}()
	<-gs.started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := e.Query(ctx, req)
		waiterDone <- err
	}()
	for e.Counter("cache_misses") < 2 {
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}

	close(gs.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v", err)
	}
	if _, via, err := e.Query(context.Background(), req); err != nil || via != ViaCache {
		t.Fatalf("post-flight query: via=%v err=%v, want cache hit", via, err)
	}
}

// --- batch -----------------------------------------------------------------

func TestBatchMatchesIndividualQueries(t *testing.T) {
	in := testInstance(t, 200, 800)
	e := New(in, Config{BatchWorkers: 4})
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Sources: []int32{int32(i * 7 % 200)}, Solver: "dijkstra"}
	}
	out := e.Batch(context.Background(), reqs)
	if len(out) != len(reqs) {
		t.Fatalf("%d results for %d queries", len(out), len(reqs))
	}
	reg, _ := solver.ByName("dijkstra")
	for i, br := range out {
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		want := reg.Solve(in, reqs[i].Sources)
		for v := range want {
			if br.Res.Dist[v] != want[v] {
				t.Fatalf("item %d dist[%d] = %d, want %d", i, v, br.Res.Dist[v], want[v])
			}
		}
	}
	if e.Counter("batch_requests") != 1 || e.Counter("batch_items") != 16 {
		t.Fatalf("batch counters = (%d, %d), want (1, 16)",
			e.Counter("batch_requests"), e.Counter("batch_items"))
	}
}

// A bad item fails alone; the rest of the batch still completes.
func TestBatchPerItemErrors(t *testing.T) {
	in := testInstance(t, 50, 200)
	e := New(in, Config{BatchWorkers: 2})
	out := e.Batch(context.Background(), []Request{
		{Sources: []int32{1}, Solver: "dijkstra"},
		{Sources: []int32{999}, Solver: "dijkstra"},
		{Sources: []int32{2}, Solver: "dijkstra"},
	})
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good items failed: %v, %v", out[0].Err, out[2].Err)
	}
	if !errors.Is(out[1].Err, ErrBadQuery) {
		t.Fatalf("bad item err = %v, want ErrBadQuery", out[1].Err)
	}
}

// Cancelling mid-batch fails the queued items with ctx.Err() while the item
// already solving runs to completion; nothing deadlocks or goes unaccounted.
func TestBatchCancellationMidFlight(t *testing.T) {
	in := testInstance(t, 50, 200)
	gs := newGated()
	e := New(in, Config{BatchWorkers: 1, Solvers: append(solver.All(), gs.register())})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []BatchResult, 1)
	go func() {
		done <- e.Batch(ctx, []Request{
			{Sources: []int32{0}, Solver: "gated"},
			{Sources: []int32{1}, Solver: "dijkstra"},
			{Sources: []int32{2}, Solver: "dijkstra"},
		})
	}()
	<-gs.started // worker 1 of 1 is inside item 0's solve; items 1, 2 queued
	cancel()
	close(gs.release)
	out := <-done

	if out[0].Err != nil {
		t.Fatalf("in-flight item err = %v, want completion", out[0].Err)
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(out[i].Err, context.Canceled) {
			t.Fatalf("queued item %d err = %v, want context.Canceled", i, out[i].Err)
		}
	}
	if solves := e.Counter("solves"); solves != 1 {
		t.Fatalf("solves = %d, want 1 (queued items must not execute)", solves)
	}
}

func TestBatchPreCancelled(t *testing.T) {
	in := testInstance(t, 50, 200)
	e := New(in, Config{BatchWorkers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := e.Batch(ctx, []Request{
		{Sources: []int32{0}}, {Sources: []int32{1}}, {Sources: []int32{2}},
	})
	for i, br := range out {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("item %d err = %v, want context.Canceled", i, br.Err)
		}
	}
	if solves := e.Counter("solves"); solves != 0 {
		t.Fatalf("solves = %d, want 0", solves)
	}
}

// --- JSON streaming --------------------------------------------------------

// DistJSON must encode distances with Inf as -1, build the bytes exactly
// once per result, and count repeat serves as bytes-from-cache.
func TestDistJSONCachedServing(t *testing.T) {
	// Two components: vertex 3 unreachable from 0.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 5)
	b.MustAddEdge(1, 2, 7)
	g := b.Build()
	e := New(solver.NewInstance(g, par.NewExec(1)), Config{CacheEntries: 4})

	res, _, err := e.Query(context.Background(), Request{Sources: []int32{0}, Solver: "dijkstra"})
	if err != nil {
		t.Fatal(err)
	}
	j1 := res.DistJSON()
	want := []byte("[0,5,12,-1]")
	if !bytes.Equal(j1, want) {
		t.Fatalf("DistJSON = %s, want %s", j1, want)
	}
	if e.Counter("full_json_built") != 1 || e.Counter("full_bytes_from_cache") != 0 {
		t.Fatalf("after first serve: built=%d fromCache=%d, want 1, 0",
			e.Counter("full_json_built"), e.Counter("full_bytes_from_cache"))
	}

	// Cache hit returns the same Result; its JSON is served without re-marshal.
	res2, via, err := e.Query(context.Background(), Request{Sources: []int32{0}, Solver: "dijkstra"})
	if err != nil || via != ViaCache {
		t.Fatalf("second query: via=%v err=%v", via, err)
	}
	j2 := res2.DistJSON()
	if &j1[0] != &j2[0] {
		t.Fatal("cache hit re-marshaled the distance vector")
	}
	if e.Counter("full_json_built") != 1 {
		t.Fatalf("built = %d, want still 1", e.Counter("full_json_built"))
	}
	if got := e.Counter("full_bytes_from_cache"); got != int64(len(want)) {
		t.Fatalf("full_bytes_from_cache = %d, want %d", got, len(want))
	}

	// The materialized JSON is charged to the cache's byte budget.
	if _, bytes := e.cache.size(); bytes <= entryBytes(res.key, res) {
		t.Fatalf("cache bytes %d not charged for JSON (entry alone is %d)",
			bytes, entryBytes(res.key, res))
	}
}

// --- stats -----------------------------------------------------------------

func TestStatsSnapshotShape(t *testing.T) {
	in := testInstance(t, 100, 400)
	e := New(in, Config{CacheEntries: 4, CacheBytes: 1 << 20})
	if _, _, err := e.Query(context.Background(), Request{Sources: []int32{0}, Solver: "thorup"}); err != nil {
		t.Fatal(err)
	}
	s := e.StatsSnapshot()
	for _, k := range []string{"solves", "dedup_hits", "cache_hits", "cache_misses",
		"cache_evictions", "batch_requests", "batch_items", "full_json_built",
		"full_bytes_from_cache", "cache_entries", "cache_bytes", "cache_max_entries",
		"cache_max_bytes", "solver_runs"} {
		if _, ok := s[k]; !ok {
			t.Fatalf("StatsSnapshot missing %q", k)
		}
	}
	if s["solves"].(int64) != 1 {
		t.Fatalf("solves = %v, want 1", s["solves"])
	}
	if runs := s["solver_runs"].(map[string]int64); runs["thorup"] != 1 {
		t.Fatalf("solver_runs[thorup] = %d, want 1", runs["thorup"])
	}
	tr, n := e.ThorupTrace()
	if n != 1 || tr.Settled == 0 {
		t.Fatalf("ThorupTrace = (%+v, %d), want 1 run with settled > 0", tr, n)
	}
	if e.InstanceBytes() <= 0 {
		t.Fatal("InstanceBytes <= 0")
	}
}
