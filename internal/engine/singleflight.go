package engine

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent calls for the same key into one execution
// whose result every caller shares — a hand-rolled, stdlib-only singleflight.
//
// The leader runs fn to completion regardless of any context (an SSSP
// traversal cannot be stopped mid-flight, and its result is still worth
// caching); waiters stop waiting when their own context expires. Completed
// calls are forgotten immediately, so only *concurrent* duplicates coalesce
// — sequential repeats are the cache's job.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *Result
}

// do returns fn's result for key, executing it at most once across all
// concurrent callers. shared reports whether this caller joined another
// caller's execution. A non-nil error is only ever the waiter's ctx error.
func (g *flightGroup) do(ctx context.Context, key string, fn func() *Result) (res *Result, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		// On panic as well: unregister and release waiters (they observe a
		// nil result) so nobody blocks forever on a poisoned call.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.res = fn()
	return c.res, false, nil
}
