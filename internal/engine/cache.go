package engine

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// lru is a bounded most-recently-used result cache keyed by the canonical
// (solver, source-set) string. It enforces two budgets: a maximum entry
// count and a maximum byte total (each entry charged its distance vector,
// key, lazily-materialized JSON form, and a fixed overhead). Either budget
// at zero disables that bound; maxEntries == 0 disables the cache entirely.
type lru struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List               // front = most recently used
	index      map[string]*list.Element // value: *cacheEntry
	evictions  *obs.Counter
}

type cacheEntry struct {
	key   string
	res   *Result
	bytes int64
}

func newLRU(maxEntries int, maxBytes int64, evictions *obs.Counter) *lru {
	return &lru{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		index:      make(map[string]*list.Element),
		evictions:  evictions,
	}
}

// entryBytes is the byte charge for a result at insertion time (before any
// JSON materialization): the distance vector, the key, and bookkeeping.
func entryBytes(key string, res *Result) int64 {
	return 8*int64(len(res.Dist)) + int64(len(key)) + 64
}

// get returns the cached result and marks it most recently used.
func (c *lru) get(key string) (*Result, bool) {
	if c.maxEntries == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// add inserts (or refreshes) a result and evicts from the LRU end until both
// budgets hold. An entry larger than the whole byte budget is evicted
// immediately, leaving the cache empty rather than over budget.
func (c *lru) add(key string, res *Result) {
	if c.maxEntries == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		// A dedup race can complete two solves for one key (leader finished,
		// cache evicted, second solve started). Keep the newer result.
		c.removeLocked(el, false)
	}
	ent := &cacheEntry{key: key, res: res, bytes: entryBytes(key, res)}
	c.index[key] = c.ll.PushFront(ent)
	c.bytes += ent.bytes
	c.evictLocked()
}

// grow charges extra bytes to an existing entry (JSON materialization) and
// re-evicts. The grown entry itself is only evicted if it exceeds the whole
// budget on its own. No-op for results no longer (or never) cached.
func (c *lru) grow(res *Result, delta int64) {
	if c.maxEntries == 0 || delta == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[res.key]
	if !ok || el.Value.(*cacheEntry).res != res {
		return
	}
	el.Value.(*cacheEntry).bytes += delta
	c.bytes += delta
	c.ll.MoveToFront(el)
	c.evictLocked()
}

// evictLocked drops least-recently-used entries until both budgets hold.
func (c *lru) evictLocked() {
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 0) {
		c.removeLocked(c.ll.Back(), true)
	}
}

func (c *lru) removeLocked(el *list.Element, counted bool) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.index, ent.key)
	c.bytes -= ent.bytes
	if counted && c.evictions != nil {
		c.evictions.Inc()
	}
}

// size returns the current entry count and byte total.
func (c *lru) size() (entries int, bytes int64) {
	if c.maxEntries == 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
