package engine

import (
	"fmt"
	"strings"
)

// pickSolver resolves the solver name for a query. An explicit name must
// exist in the engine's solver pool and be applicable to the graph (BFS on
// non-unit weights is rejected, not silently wrong). Empty or "auto" selects
// by policy:
//
//   - unit-weight graphs: BFS — a unit-weight traversal is the cheapest
//     exact solver and parallelizes on the instance runtime;
//   - multi-source queries: Thorup — the only solver here that answers a
//     source set natively in one run over the shared hierarchy (everything
//     else pays one full run per source);
//   - single-source: delta-stepping when the instance's heuristic bucket
//     width exceeds 1 (weight range admits real buckets, so phases batch
//     work), Thorup otherwise (delta = 1 degenerates into a serial-grade
//     Dijkstra ordering, while Thorup keeps traversal cost near-linear).
//
// The policy consults only precomputed instance stats, so selection is O(1).
func (e *Engine) pickSolver(name string, srcs []int32) (string, error) {
	if name != "" && name != "auto" {
		s, ok := e.byName(name)
		if !ok {
			return "", fmt.Errorf("%w: unknown solver %q (have %s)", ErrBadQuery, name, strings.Join(e.names(), ", "))
		}
		if !s.Applicable(e.in.G) {
			return "", fmt.Errorf("%w: solver %q requires unit edge weights", ErrBadQuery, name)
		}
		return name, nil
	}
	if e.unitW {
		return "bfs", nil
	}
	if len(srcs) > 1 {
		return "thorup", nil
	}
	if _, ok := e.byName("delta"); ok && e.delta > 1 {
		return "delta", nil
	}
	return "thorup", nil
}

func (e *Engine) names() []string {
	out := make([]string, len(e.solvers))
	for i, s := range e.solvers {
		out[i] = s.Name
	}
	return out
}
