package engine

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// ModelOverrideMargin is how decisively the learned cost model must beat
// the static ladder's choice before it overrides it: the argmin solver's
// predicted cost must be at least this factor below the static choice's
// own predicted cost. Linear per-solver regressions carry family-level
// error the feature basis cannot see, so near-tie rankings are noise; the
// ladder keeps those, and the model only claims the decisive wins
// (DESIGN.md §14).
const ModelOverrideMargin = 1.25

// pickSolver resolves the solver name for a query. An explicit name must
// exist in the engine's solver pool and be applicable to the graph (BFS on
// non-unit weights is rejected, not silently wrong). Empty or "auto" selects
// by the learned cost model when one is loaded — predicted-cost argmin over
// the applicable solvers, subject to ModelOverrideMargin against the static
// choice (DESIGN.md §14) — and otherwise by the static heuristic:
//
//   - unit-weight graphs: BFS — a unit-weight traversal is the cheapest
//     exact solver and parallelizes on the instance runtime;
//   - multi-source queries: Thorup — the only solver here that answers a
//     source set natively in one run over the shared hierarchy (everything
//     else pays one full run per source);
//   - single-source: delta-stepping when the instance's heuristic bucket
//     width exceeds 1 (weight range admits real buckets, so phases batch
//     work), Thorup otherwise (delta = 1 degenerates into a serial-grade
//     Dijkstra ordering, while Thorup keeps traversal cost near-linear).
//
// The static ladder also backstops the model: no model loaded, a model with
// zero coefficients for every applicable solver, or a nil provider all land
// here (counted as static_fallbacks when record is set). Both paths consult
// only precomputed instance stats, so selection stays O(1).
//
// record separates real selections (Query: counted as model_picks /
// static_fallbacks) from advisory ones (PredictCost: uncounted), so the
// counters measure served traffic, not admission probes.
func (e *Engine) pickSolver(name string, srcs []int32, record bool) (string, error) {
	if name != "" && name != "auto" {
		s, ok := e.byName(name)
		if !ok {
			return "", fmt.Errorf("%w: unknown solver %q (have %s)", ErrBadQuery, name, strings.Join(e.names(), ", "))
		}
		if !s.Applicable(e.in.G) {
			return "", fmt.Errorf("%w: solver %q requires unit edge weights", ErrBadQuery, name)
		}
		return name, nil
	}
	static := e.staticPick(srcs)
	if best, ok := e.argminSolver(len(srcs), static); ok {
		if record {
			e.cost.CountModelPick()
		}
		return best, nil
	}
	if record {
		e.cost.CountStaticFallback()
	}
	return static, nil
}

// staticPick is the heuristic ladder documented on pickSolver.
func (e *Engine) staticPick(srcs []int32) string {
	if e.unitW {
		return "bfs"
	}
	if len(srcs) > 1 {
		return "thorup"
	}
	if _, ok := e.byName("delta"); ok && e.delta > 1 {
		return "delta"
	}
	return "thorup"
}

// argminSolver prices every applicable solver in the pool with the loaded
// cost model and returns the choice the model stands behind: the cheapest
// predicted solver if it beats the static choice's own prediction by
// ModelOverrideMargin (or the static choice has no prediction at all),
// otherwise the static choice itself — still a model pick, the model was
// consulted and endorsed the ladder. ok is false when no model is loaded
// or no applicable solver has usable (non-zero) coefficients — the caller
// falls back to the static ladder uncounted as a model decision. Ties
// break toward the earlier solver in the pool (the registry order), which
// is deterministic.
func (e *Engine) argminSolver(sources int, static string) (string, bool) {
	m := e.cost.Model()
	if m == nil {
		return "", false
	}
	f := e.features(sources)
	best, bestD := "", time.Duration(math.MaxInt64)
	for _, s := range e.solvers {
		if !s.Applicable(e.in.G) {
			continue
		}
		if d, ok := m.PredictFor(e.cfg.Graph, s.Name, f); ok && d < bestD {
			best, bestD = s.Name, d
		}
	}
	if best == "" || best == static {
		return best, best != ""
	}
	if sd, ok := m.PredictFor(e.cfg.Graph, static, f); ok && float64(sd) < float64(bestD)*ModelOverrideMargin {
		return static, true
	}
	return best, true
}

func (e *Engine) names() []string {
	out := make([]string, len(e.solvers))
	for i, s := range e.solvers {
		out[i] = s.Name
	}
	return out
}
