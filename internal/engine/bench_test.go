package engine

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/solver"
)

// benchInstance is sized so a solve is real work (tens of microseconds) but
// per-query setup still shows: the regime the engine exists for.
func benchInstance(b *testing.B) *solver.Instance {
	b.Helper()
	g := gen.Random(1<<12, 1<<14, 1<<10, gen.UWD, 42)
	in := solver.NewInstance(g, par.NewExec(2))
	in.Hierarchy() // build once, outside timing
	return in
}

// Cold: every query allocates fresh solver state.
func BenchmarkEngineColdQuery(b *testing.B) {
	e := New(benchInstance(b), Config{DisablePool: true})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int32(i % 4096)
		if _, _, err := e.Query(ctx, Request{Sources: []int32{src}, Solver: "thorup"}); err != nil {
			b.Fatal(err)
		}
	}
}

// Pooled: identical workload, state reused through the pool.
func BenchmarkEnginePooledQuery(b *testing.B) {
	e := New(benchInstance(b), Config{})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int32(i % 4096)
		if _, _, err := e.Query(ctx, Request{Sources: []int32{src}, Solver: "thorup"}); err != nil {
			b.Fatal(err)
		}
	}
}

// Miss: distinct sources with the cache enabled — full solve plus cache
// maintenance, the baseline for the hit benchmark.
func BenchmarkEngineCacheMiss(b *testing.B) {
	e := New(benchInstance(b), Config{CacheEntries: 16})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 4096 distinct sources against 16 entries: effectively always a miss.
		src := int32(i % 4096)
		if _, _, err := e.Query(ctx, Request{Sources: []int32{src}, Solver: "thorup"}); err != nil {
			b.Fatal(err)
		}
	}
}

// Hit: one hot source answered from the result cache.
func BenchmarkEngineCacheHit(b *testing.B) {
	e := New(benchInstance(b), Config{CacheEntries: 16})
	ctx := context.Background()
	req := Request{Sources: []int32{17}, Solver: "thorup"}
	if _, _, err := e.Query(ctx, req); err != nil { // warm the entry
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, via, err := e.Query(ctx, req); err != nil || via != ViaCache {
			b.Fatalf("via=%v err=%v", via, err)
		}
	}
}
