package engine

import (
	"context"
	"sync"

	"repro/internal/trace"
)

// BatchResult is the outcome of one batch item: either a shared Result or a
// per-item error (bad query, or the batch context expired before the item
// was picked up).
type BatchResult struct {
	Res *Result
	Via Via
	Err error
}

// Batch answers many queries over the shared instance with a bounded worker
// pool (Config.BatchWorkers), amortizing per-request overhead: one admission,
// one response, one hierarchy, pooled state per worker. Items still flow
// through the cache and singleflight individually, so duplicate sources
// within a batch — or across a batch and live queries — solve once.
//
// The returned slice maps 1:1 to queries. Once ctx is cancelled, items not
// yet picked up fail with ctx.Err(); items already solving run to completion.
// Every item is always accounted for — the call never blocks on a cancelled
// remainder.
func (e *Engine) Batch(ctx context.Context, queries []Request) []BatchResult {
	e.counters.C(cBatchRequests).Inc()
	e.counters.C(cBatchItems).Add(int64(len(queries)))
	out := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	workers := e.cfg.BatchWorkers
	if workers > len(queries) {
		workers = len(queries)
	}
	// When the batch request is traced, each item records an "item" span
	// under the batch's current span, so the parent trace ID reaches every
	// item; the per-trace span cap bounds what a 4096-item batch can attach.
	parent := trace.SpanFromContext(ctx)
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				// Workers always drain the channel; cancellation is observed
				// per item (Query checks ctx up front), so the feeder below
				// never blocks forever.
				ictx := ctx
				var isp *trace.Span
				if parent != nil {
					isp = parent.StartChild("item")
					isp.SetAttr("index", i)
					ictx = trace.WithSpan(ctx, isp)
				}
				res, via, err := e.Query(ictx, queries[i])
				isp.End()
				out[i] = BatchResult{Res: res, Via: via, Err: err}
			}
		}()
	}
	for i := range queries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
