package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/solver"
	"repro/internal/trace"
)

// ErrBadQuery marks request errors (out-of-range vertices, unknown or
// inapplicable solvers) that a serving layer should map to a 4xx status,
// as opposed to context cancellation.
var ErrBadQuery = errors.New("bad query")

// Config parameterizes an Engine. The zero value is usable: pooling on,
// cache disabled, 4 batch workers, the full solver registry.
type Config struct {
	// CacheEntries bounds the number of cached result vectors; 0 disables
	// the cache entirely.
	CacheEntries int
	// CacheBytes bounds the summed size of cached vectors (distances plus
	// any materialized JSON form); 0 means entry-count-bounded only.
	CacheBytes int64
	// BatchWorkers is the concurrency of Batch (default 4). Each worker
	// drives whole queries; the solvers parallelize internally on the
	// instance runtime as well.
	BatchWorkers int
	// Solvers overrides the solver pool (default solver.All()). Tests and
	// harnesses may append instrumented or fault-injected variants.
	Solvers []solver.Solver
	// DisablePool bypasses query-state reuse so every solve allocates fresh
	// state — the benchmark baseline for measuring what pooling saves.
	DisablePool bool
	// KeyPrefix is prepended to every cache/singleflight key. A catalog
	// serving several graphs (or several generations of one graph) sets this
	// to "name@gen|" so results can never alias across instances even if
	// engines were ever to share storage.
	KeyPrefix string
	// CostModel supplies learned per-solver latency predictions for solver
	// selection (predicted-cost argmin) and admission pricing. nil — or a
	// provider with no model loaded — keeps the static policy.
	CostModel *costmodel.Provider
	// Graph is the name this instance is served under (the catalog's graph
	// name). It keys the cost model's per-graph calibration; empty means
	// uncalibrated global predictions.
	Graph string
}

// Engine executes SSSP queries against one shared solver.Instance with
// pooling, deduplication, caching, and batching. Safe for concurrent use.
type Engine struct {
	in       *solver.Instance
	cfg      Config
	solvers  []solver.Solver
	core     *core.Solver // Thorup solver over the shared hierarchy
	coreOnce sync.Once
	delta    int64 // precomputed delta-stepping bucket width
	unitW    bool  // all edge weights are 1 (BFS is exact)

	qpool sync.Pool // *core.Query        (thorup)
	dpool sync.Pool // *dijkstra.Scratch  (dijkstra)
	spool sync.Pool // *deltastep.State   (delta)

	cache  *lru
	flight flightGroup

	cost     *costmodel.Provider // may be nil (static policy only)
	baseFeat costmodel.Features  // graph-level features; Sources set per query

	counters   *obs.Group
	solverRuns map[string]*obs.Counter

	traceAgg   core.Trace  // aggregate of pooled Thorup query traces
	thorupRuns obs.Counter // Thorup runs folded into traceAgg
}

// Counter names of Engine.Counters, in snapshot order.
const (
	cSolves             = "solves"
	cDedupHits          = "dedup_hits"
	cCacheHits          = "cache_hits"
	cCacheMisses        = "cache_misses"
	cCacheEvictions     = "cache_evictions"
	cBatchRequests      = "batch_requests"
	cBatchItems         = "batch_items"
	cFullJSONBuilt      = "full_json_built"
	cFullBytesFromCache = "full_bytes_from_cache"
)

// New creates an engine over the instance. The hierarchy is built on first
// use if a Thorup query runs (or was already built by the caller).
func New(in *solver.Instance, cfg Config) *Engine {
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = 4
	}
	solvers := cfg.Solvers
	if solvers == nil {
		solvers = solver.All()
	}
	e := &Engine{
		in:      in,
		cfg:     cfg,
		solvers: solvers,
		delta:   deltastep.DefaultDelta(in.G),
		counters: obs.NewGroup(cSolves, cDedupHits, cCacheHits, cCacheMisses,
			cCacheEvictions, cBatchRequests, cBatchItems, cFullJSONBuilt, cFullBytesFromCache),
		solverRuns: make(map[string]*obs.Counter, len(solvers)),
		cost:       cfg.CostModel,
		baseFeat: costmodel.Features{
			N:         in.G.NumVertices(),
			M:         in.G.NumEdges(),
			MaxWeight: in.G.MaxWeight(),
		},
	}
	if bfs, ok := e.byName("bfs"); ok {
		e.unitW = bfs.Applicable(in.G)
	}
	for _, s := range solvers {
		e.solverRuns[s.Name] = &obs.Counter{}
	}
	e.cache = newLRU(cfg.CacheEntries, cfg.CacheBytes, e.counters.C(cCacheEvictions))
	e.flight.calls = make(map[string]*flightCall)
	e.qpool.New = func() any {
		q := e.coreSolver().Query()
		q.EnableTrace()
		return q
	}
	e.dpool.New = func() any { return dijkstra.NewScratch() }
	e.spool.New = func() any { return deltastep.NewState() }
	return e
}

// coreSolver lazily creates the shared Thorup solver (building the hierarchy
// on first use, exactly once). Safe for concurrent first use — pool New
// functions may race here.
func (e *Engine) coreSolver() *core.Solver {
	e.coreOnce.Do(func() {
		e.core = core.NewSolver(e.in.Hierarchy(), e.in.RT)
	})
	return e.core
}

func (e *Engine) byName(name string) (solver.Solver, bool) {
	for _, s := range e.solvers {
		if s.Name == name {
			return s, true
		}
	}
	return solver.Solver{}, false
}

// Request is one SSSP query: a non-empty source set and an optional solver
// override ("" or "auto" selects by policy).
type Request struct {
	Sources []int32
	Solver  string
}

// Via reports how a query was answered.
type Via int

const (
	// ViaSolve: this call executed a solver.
	ViaSolve Via = iota
	// ViaDedup: this call joined a concurrent identical query in flight.
	ViaDedup
	// ViaCache: this call was answered from the result cache.
	ViaCache
)

func (v Via) String() string {
	switch v {
	case ViaSolve:
		return "solve"
	case ViaDedup:
		return "dedup"
	case ViaCache:
		return "cache"
	default:
		return fmt.Sprintf("Via(%d)", int(v))
	}
}

// Result is one immutable query answer, shared between the cache and every
// caller that received it. Dist must not be mutated.
type Result struct {
	// Solver is the registry name of the solver that produced the vector.
	Solver string
	// Dist is the distance vector (graph.Inf for unreachable vertices).
	Dist []int64
	// Reached is the number of vertices with finite distance.
	Reached int
	// Eccentricity is the largest finite distance.
	Eccentricity int64

	e        *Engine
	key      string
	jsonOnce sync.Once
	distJSON []byte
}

// DistJSON returns the JSON array form of the distance vector, with
// unreachable vertices encoded as -1. It is built at most once per Result;
// later calls — cache hits included — reuse the serialized bytes, which the
// engine counts as full_bytes_from_cache. The returned slice is immutable.
func (r *Result) DistJSON() []byte {
	first := false
	r.jsonOnce.Do(func() {
		first = true
		buf := make([]byte, 0, 4*len(r.Dist)+2)
		buf = append(buf, '[')
		for i, d := range r.Dist {
			if i > 0 {
				buf = append(buf, ',')
			}
			if d >= graph.Inf {
				buf = append(buf, '-', '1')
			} else {
				buf = strconv.AppendInt(buf, d, 10)
			}
		}
		buf = append(buf, ']')
		r.distJSON = buf
		if r.e != nil {
			r.e.counters.C(cFullJSONBuilt).Inc()
			// The serialized form now lives alongside the vector; charge it
			// against the cache's byte budget.
			r.e.cache.grow(r, int64(len(buf)))
		}
	})
	if !first && r.e != nil {
		r.e.counters.C(cFullBytesFromCache).Add(int64(len(r.distJSON)))
	}
	return r.distJSON
}

// Query answers one request: cache lookup, then singleflight coalescing,
// then a pooled solver execution. Waiters honour ctx; the execution itself
// is not cancellable (a Thorup traversal cannot stop mid-flight), so the
// leader always completes and caches its result even if its own ctx expires.
//
// When the context carries a request trace (internal/trace), the stages are
// recorded as spans under the context's current span: "cache_lookup" (with a
// hit attribute), then either "solve" (this caller was the singleflight
// leader; pool checkout and solver-phase counters nest under it) or
// "singleflight_wait" (this caller joined a leader's execution).
func (e *Engine) Query(ctx context.Context, req Request) (*Result, Via, error) {
	if err := ctx.Err(); err != nil {
		return nil, ViaSolve, err
	}
	name, srcs, key, err := e.plan(req, true)
	if err != nil {
		return nil, ViaSolve, err
	}
	parent := trace.SpanFromContext(ctx)
	parent.Trace().SetSolver(name)
	lk := parent.StartChild("cache_lookup")
	res, ok := e.cache.get(key)
	lk.SetAttr("hit", ok)
	lk.End()
	if ok {
		e.counters.C(cCacheHits).Inc()
		return res, ViaCache, nil
	}
	e.counters.C(cCacheMisses).Inc()
	// The wait span is only attached when this caller actually waited on
	// another's execution; a leader's time is the solve span instead.
	wait := parent.StartChild("singleflight_wait")
	res, shared, err := e.flight.do(ctx, key, func() *Result {
		return e.solve(parent, name, srcs, key)
	})
	if shared {
		wait.End()
	}
	if err != nil {
		return nil, ViaDedup, err
	}
	if res == nil {
		return nil, ViaDedup, fmt.Errorf("engine: solver %s failed", name)
	}
	if shared {
		e.counters.C(cDedupHits).Inc()
		return res, ViaDedup, nil
	}
	return res, ViaSolve, nil
}

// plan validates the request, canonicalizes the source set (sorted, deduped
// — multi-source distances are order-independent, so equivalent requests
// share one cache key), resolves the solver by policy, and builds the key.
// record is forwarded to pickSolver: true for real selections, false for
// advisory ones (PredictCost).
func (e *Engine) plan(req Request, record bool) (name string, srcs []int32, key string, err error) {
	n := e.in.G.NumVertices()
	if len(req.Sources) == 0 {
		return "", nil, "", fmt.Errorf("%w: no source vertices", ErrBadQuery)
	}
	for _, s := range req.Sources {
		if s < 0 || int(s) >= n {
			return "", nil, "", fmt.Errorf("%w: source %d out of range [0,%d)", ErrBadQuery, s, n)
		}
	}
	srcs = append(make([]int32, 0, len(req.Sources)), req.Sources...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	w := 1
	for i := 1; i < len(srcs); i++ {
		if srcs[i] != srcs[i-1] {
			srcs[w] = srcs[i]
			w++
		}
	}
	srcs = srcs[:w]

	name, err = e.pickSolver(req.Solver, srcs, record)
	if err != nil {
		return "", nil, "", err
	}

	kb := make([]byte, 0, len(e.cfg.KeyPrefix)+len(name)+8*len(srcs))
	kb = append(kb, e.cfg.KeyPrefix...)
	kb = append(kb, name...)
	for _, s := range srcs {
		kb = append(kb, '|')
		kb = strconv.AppendInt(kb, int64(s), 10)
	}
	return name, srcs, string(kb), nil
}

// features projects the engine's graph plus a source-set size onto the cost
// model's feature space.
func (e *Engine) features(sources int) costmodel.Features {
	f := e.baseFeat
	f.Sources = sources
	return f
}

// PredictCost resolves the solver req would run under the current policy
// and prices it with the loaded cost model, without executing anything and
// without touching the selection counters — the serving layer calls it to
// decide predictive admission before committing a worker. ok is false when
// no model is loaded or it has no usable coefficients for the resolved
// solver. err carries the same ErrBadQuery validation errors Query would
// return, so callers can skip admission and let Query surface the 4xx.
func (e *Engine) PredictCost(req Request) (solverName string, cost time.Duration, ok bool, err error) {
	name, srcs, _, err := e.plan(req, false)
	if err != nil {
		return "", 0, false, err
	}
	d, ok := e.cost.PredictFor(e.cfg.Graph, name, e.features(len(srcs)))
	return name, d, ok, nil
}

// solve runs the named solver on the canonical source set with pooled state,
// detaches the result, and caches it. parent is the singleflight leader's
// trace position (nil when untraced): the execution is recorded as a "solve"
// span with a nested "pool_checkout", annotated with the solver name, source
// count, and — for Thorup — the solver-phase counters of core.Trace.
func (e *Engine) solve(parent *trace.Span, name string, srcs []int32, key string) *Result {
	e.counters.C(cSolves).Inc()
	if c, ok := e.solverRuns[name]; ok {
		c.Inc()
	}
	sp := parent.StartChild("solve")
	sp.SetAttr("solver", name)
	sp.SetAttr("sources", len(srcs))
	defer sp.End()
	// Exactly one prediction-vs-actual observation per executed solve: cache
	// hits and singleflight joiners never reach this function, so the drift
	// histograms measure real model error, once per label.
	if pred, havePred := e.cost.PredictFor(e.cfg.Graph, name, e.features(len(srcs))); havePred {
		sp.SetAttr("predicted_us", pred.Microseconds())
		start := time.Now()
		defer func() { e.cost.ObservePrediction(pred, time.Since(start)) }()
	}
	var dist []int64
	switch name {
	case "thorup":
		pc := sp.StartChild("pool_checkout")
		q := e.qpool.Get().(*core.Query)
		pc.End()
		d := q.RunFromSources(srcs)
		dist = append(make([]int64, 0, len(d)), d...)
		if tr := q.Trace(); tr != nil {
			snap := tr.Snapshot()
			e.traceAgg.Merge(snap)
			e.thorupRuns.Inc()
			if sp != nil {
				for k, v := range snap.AttrMap() {
					sp.SetAttr(k, v)
				}
			}
		}
		if !e.cfg.DisablePool {
			q.Reset()
			e.qpool.Put(q)
		}
	case "dijkstra":
		pc := sp.StartChild("pool_checkout")
		sc := e.dpool.Get().(*dijkstra.Scratch)
		pc.End()
		dist = foldPooled(func(s int32) []int64 { return sc.SSSP(e.in.G, s) }, srcs)
		if !e.cfg.DisablePool {
			sc.Reset()
			e.dpool.Put(sc)
		}
	case "delta":
		pc := sp.StartChild("pool_checkout")
		st := e.spool.Get().(*deltastep.State)
		pc.End()
		dist = foldPooled(func(s int32) []int64 {
			d, _ := st.Run(e.in.RT, e.in.G, s, e.delta)
			return d
		}, srcs)
		if !e.cfg.DisablePool {
			st.Reset()
			e.spool.Put(st)
		}
	default:
		// Registry solvers without a pooled fast path (thorup-serial, mlb,
		// bfs) allocate per run; their Solve already returns detached state.
		s, _ := e.byName(name)
		if s.NeedsCH {
			// Instance.Hierarchy memoizes without a lock; route the first
			// build through the engine's once so concurrent queries don't
			// race on it.
			e.coreSolver()
		}
		dist = s.Solve(e.in, srcs)
	}

	res := &Result{Solver: name, Dist: dist, e: e, key: key}
	for _, d := range dist {
		if d < graph.Inf {
			res.Reached++
			if d > res.Eccentricity {
				res.Eccentricity = d
			}
		}
	}
	e.cache.add(key, res)
	return res
}

// foldPooled answers a multi-source query with a pooled single-source run:
// the elementwise minimum over per-source labellings, detached from the
// pooled buffer.
func foldPooled(run func(src int32) []int64, srcs []int32) []int64 {
	out := append([]int64(nil), run(srcs[0])...)
	for _, s := range srcs[1:] {
		for v, d := range run(s) {
			if d < out[v] {
				out[v] = d
			}
		}
	}
	return out
}

// InstanceBytes is the memory footprint of one Thorup query instance over
// the shared hierarchy (arithmetic only; no allocation).
func (e *Engine) InstanceBytes() int64 { return e.coreSolver().InstanceBytes() }

// Counter returns the named engine counter's value (see the c* constants'
// snapshot names: "solves", "dedup_hits", "cache_hits", ...). Unknown names
// panic.
func (e *Engine) Counter(name string) int64 { return e.counters.C(name).Value() }

// SolverRuns returns how many executions each solver performed.
func (e *Engine) SolverRuns() map[string]int64 {
	out := make(map[string]int64, len(e.solverRuns))
	for name, c := range e.solverRuns {
		out[name] = c.Value()
	}
	return out
}

// ThorupTrace returns the aggregate trace of all pooled Thorup executions
// and how many runs it covers.
func (e *Engine) ThorupTrace() (core.Trace, int64) {
	return e.traceAgg.Snapshot(), e.thorupRuns.Value()
}

// StatsSnapshot returns the engine's observable state, shaped for a JSON
// /metrics endpoint: every counter, the cache's current and maximum sizes,
// and per-solver run counts.
func (e *Engine) StatsSnapshot() map[string]any {
	out := make(map[string]any, 16)
	for k, v := range e.counters.Snapshot() {
		out[k] = v
	}
	entries, bytes := e.cache.size()
	out["cache_entries"] = entries
	out["cache_bytes"] = bytes
	out["cache_max_entries"] = e.cfg.CacheEntries
	out["cache_max_bytes"] = e.cfg.CacheBytes
	out["solver_runs"] = e.SolverRuns()
	return out
}
