// Package engine is the query-execution plane between a serving layer
// (cmd/ssspd's HTTP handlers) and the SSSP solvers. The paper's service shape
// — one immutable Component Hierarchy, many cheap concurrent traversals — is
// throughput-bound by per-query setup once traffic is heavy, so the engine
// amortizes or eliminates every per-query cost it can:
//
//   - a query-state pool (sync.Pool) reuses Thorup query instances, Dijkstra
//     scratch, and delta-stepping state instead of allocating per request;
//     instances are scrubbed with their Reset methods when returned;
//   - singleflight deduplication coalesces concurrent identical queries into
//     one solver execution whose result every caller shares;
//   - a bounded LRU cache (entry- and byte-budgeted) keeps recent distance
//     vectors, together with their serialized JSON form, so repeated sources
//     are answered without solving or re-marshaling;
//   - a batch executor fans many sources of one request across a worker pool
//     that shares the hierarchy, amortizing per-request overhead;
//   - a solver-selection policy picks the cheapest applicable solver per
//     query (BFS on unit weights, delta-stepping vs Thorup by instance
//     shape), overridable per request.
//
// Results are immutable and shared between the cache and all callers: never
// mutate Result.Dist.
//
// See DESIGN.md §8 ("Query engine") for how this package fits the system.
package engine
