package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/solver"
)

// testModel compiles a hand-written coefficient set (values in µs per
// feature unit) into a loaded provider.
func testModel(tb testing.TB, coef map[string][]float64) *costmodel.Provider {
	tb.Helper()
	f := &costmodel.File{
		Version:        costmodel.FileVersion,
		Features:       append([]string(nil), costmodel.FeatureNames...),
		DatasetVersion: costmodel.DatasetVersion,
		Solvers:        make(map[string]costmodel.SolverCoef),
	}
	for name, c := range coef {
		if len(c) != costmodel.NumFeatures {
			tb.Fatalf("coef for %s has %d entries", name, len(c))
		}
		f.Solvers[name] = costmodel.SolverCoef{Coef: c, Samples: 1}
	}
	if err := f.Validate(); err != nil {
		tb.Fatal(err)
	}
	p := costmodel.NewProvider()
	p.SetModel(costmodel.NewModel(f))
	return p
}

// crossoverModel prices per-source folding (dijkstra, delta) against
// thorup's native multi-source run so the argmin walks the ladder
// dijkstra → delta → thorup as the source set grows. Feature order:
// [intercept, n, m, n_log_n, sources, sources_m, log_c].
func crossoverModel(tb testing.TB) *costmodel.Provider {
	return testModel(tb, map[string][]float64{
		"dijkstra": {100, 0, 0, 0, 0, 0.5, 0},
		"delta":    {2000, 0, 0, 0, 0, 0.25, 0},
		"thorup":   {5000, 0, 0.05, 0, 0, 0, 0},
		"bfs":      {50, 0, 0.01, 0, 0, 0, 0},
	})
}

// Golden decisions: the same queries, static policy vs model-driven, across
// weighted and unit-weight instances. Pins both ladders so a policy change
// has to be deliberate.
func TestPolicyGoldenStaticVsModel(t *testing.T) {
	weighted := testInstance(t, 256, 1024) // maxW 1024, delta > 1
	unit := solver.NewInstance(gen.Random(256, 1024, 1, gen.UWD, 7), par.NewExec(2))

	cases := []struct {
		name       string
		unitGraph  bool
		sources    []int32
		wantStatic string
		wantModel  string
	}{
		// n=256, m=1024: dijkstra 100+0.5·s·m, delta 2000+0.25·s·m, thorup 5000+51.
		{"single source", false, []int32{3}, "delta", "dijkstra"}, // 612 vs 2256 vs 5051: decisive override
		// delta predicts 4048 vs thorup's 5051 — a ~1.25× edge, inside
		// ModelOverrideMargin, so the ladder's thorup pick holds.
		{"small multi", false, []int32{1, 2, 3, 4, 5, 6, 7, 8}, "thorup", "thorup"}, // 4196 vs 4048 vs 5051
		{"wide multi", false, func() []int32 { // 32 sources
			s := make([]int32, 32)
			for i := range s {
				s[i] = int32(i)
			}
			return s
		}(), "thorup", "thorup"}, // 16484 vs 10192 vs 5051
		{"unit graph", true, []int32{3}, "bfs", "bfs"}, // bfs 60.24 beats everything
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := weighted
			if tc.unitGraph {
				in = unit
			}
			static := New(in, Config{})
			model := New(in, Config{CostModel: crossoverModel(t)})
			if got, err := static.pickSolver("auto", tc.sources, true); err != nil || got != tc.wantStatic {
				t.Fatalf("static pick = %s (%v), want %s", got, err, tc.wantStatic)
			}
			if got, err := model.pickSolver("auto", tc.sources, true); err != nil || got != tc.wantModel {
				t.Fatalf("model pick = %s (%v), want %s", got, err, tc.wantModel)
			}
			// Explicit override must bypass the model entirely.
			if got, err := model.pickSolver("mlb", tc.sources, true); err != nil || got != "mlb" {
				t.Fatalf("override pick = %s (%v), want mlb", got, err)
			}
		})
	}
}

// A model whose coefficients are all zero for every applicable solver must
// fall back to the static ladder — the zero-coefficient fallback the design
// requires — and count the fallback.
func TestPolicyZeroCoefficientsFallsBack(t *testing.T) {
	in := testInstance(t, 128, 512)
	p := testModel(t, map[string][]float64{
		"dijkstra": make([]float64, costmodel.NumFeatures),
		"thorup":   make([]float64, costmodel.NumFeatures),
	})
	// testModel's Validate rejects nothing here: zero coef vectors are valid
	// in a file; they just never predict.
	e := New(in, Config{CostModel: p})
	got, err := e.pickSolver("auto", []int32{3}, true)
	if err != nil {
		t.Fatal(err)
	}
	static := New(in, Config{})
	want, err := static.pickSolver("auto", []int32{3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("zero-coef pick = %s, static = %s", got, want)
	}
	ctrs := p.Counters().Snapshot()
	if ctrs[costmodel.CtrStaticFallbacks] != 1 || ctrs[costmodel.CtrModelPicks] != 0 {
		t.Fatalf("fallback accounting: %v", ctrs)
	}
}

// A model that only knows inapplicable solvers (bfs on a weighted graph)
// must also fall back rather than pick a solver that would be rejected.
func TestPolicyInapplicableModelSolverFallsBack(t *testing.T) {
	in := testInstance(t, 128, 512) // weighted
	p := testModel(t, map[string][]float64{"bfs": {50, 0, 0.01, 0, 0, 0, 0}})
	e := New(in, Config{CostModel: p})
	got, err := e.pickSolver("auto", []int32{3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got == "bfs" {
		t.Fatal("picked an inapplicable solver")
	}
	if p.Counters().Snapshot()[costmodel.CtrStaticFallbacks] != 1 {
		t.Fatal("fallback not counted")
	}
}

func TestPredictCost(t *testing.T) {
	in := testInstance(t, 256, 1024)
	p := crossoverModel(t)
	e := New(in, Config{CostModel: p})
	name, cost, ok, err := e.PredictCost(Request{Sources: []int32{3}})
	if err != nil || !ok {
		t.Fatalf("PredictCost: ok=%v err=%v", ok, err)
	}
	if name != "dijkstra" {
		t.Fatalf("resolved %s, want dijkstra", name)
	}
	// 100 + 0.5·(1·1024) = 612µs
	if want := 612 * time.Microsecond; cost != want {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
	// Advisory path must not move the selection counters.
	ctrs := p.Counters().Snapshot()
	if ctrs[costmodel.CtrModelPicks] != 0 || ctrs[costmodel.CtrStaticFallbacks] != 0 {
		t.Fatalf("PredictCost touched selection counters: %v", ctrs)
	}
	// Validation errors surface as ErrBadQuery, same as Query.
	if _, _, _, err := e.PredictCost(Request{Sources: []int32{-1}}); err == nil {
		t.Fatal("bad query accepted")
	}
	// Without a model: ok=false, no error.
	eNo := New(in, Config{})
	if _, _, ok, err := eNo.PredictCost(Request{Sources: []int32{3}}); ok || err != nil {
		t.Fatalf("model-less PredictCost: ok=%v err=%v", ok, err)
	}
}

// Prediction-error accounting exactness: one observation per executed
// solve — a cache hit and a repeated identical query add nothing.
func TestPredictionObservationExactness(t *testing.T) {
	in := testInstance(t, 128, 512)
	p := crossoverModel(t)
	e := New(in, Config{CacheEntries: 8, CostModel: p})
	ctx := context.Background()

	if _, via, err := e.Query(ctx, Request{Sources: []int32{1}}); err != nil || via != ViaSolve {
		t.Fatalf("first query: via=%v err=%v", via, err)
	}
	if _, via, err := e.Query(ctx, Request{Sources: []int32{1}}); err != nil || via != ViaCache {
		t.Fatalf("second query: via=%v err=%v", via, err)
	}
	if _, via, err := e.Query(ctx, Request{Sources: []int32{2}}); err != nil || via != ViaSolve {
		t.Fatalf("third query: via=%v err=%v", via, err)
	}

	ctrs := p.Counters().Snapshot()
	if ctrs[costmodel.CtrPredictions] != 2 {
		t.Fatalf("predictions = %d, want 2 (one per executed solve)", ctrs[costmodel.CtrPredictions])
	}
	if over, under := ctrs[costmodel.CtrPredictionOver], ctrs[costmodel.CtrPredictionUnder]; over+under != 2 {
		t.Fatalf("over+under = %d, want 2", over+under)
	}
	if got := p.PredictedCost.Snapshot().Count; got != 2 {
		t.Fatalf("predicted_cost count = %d, want 2", got)
	}
	if got := p.AbsError.Snapshot().Count; got != 2 {
		t.Fatalf("abs_error count = %d, want 2", got)
	}
	if got := p.RelError.Snapshot().Count; got != 2 {
		t.Fatalf("rel_error count = %d, want 2", got)
	}
	if ctrs[costmodel.CtrModelPicks] != 3 {
		t.Fatalf("model_picks = %d, want 3 (every Query selection)", ctrs[costmodel.CtrModelPicks])
	}
	// Explicit-solver queries still observe (the model prices what ran).
	if _, _, err := e.Query(ctx, Request{Sources: []int32{3}, Solver: "thorup"}); err != nil {
		t.Fatal(err)
	}
	if got := p.Counters().Snapshot()[costmodel.CtrPredictions]; got != 3 {
		t.Fatalf("predictions after explicit query = %d, want 3", got)
	}
}
