package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
)

// Fingerprint identifies a graph's exact structure and weights: the vertex
// and edge counts plus a CRC-64/ECMA over the CSR arrays (offsets, targets,
// weights). Two graphs share a fingerprint iff their CSR representations are
// byte-identical, which is what cached artifacts derived from a graph (a
// serialized Component Hierarchy, a binary snapshot) store to refuse being
// paired with the wrong input — a filename is not an identity.
type Fingerprint struct {
	N   int32  // vertices
	M   int64  // undirected edges
	CRC uint64 // CRC-64/ECMA over offsets, targets, weights (little-endian)
}

func (f Fingerprint) String() string {
	return fmt.Sprintf("n=%d m=%d crc=%016x", f.N, f.M, f.CRC)
}

// Fingerprint returns the graph's fingerprint. The first call computes it
// (O(n+m), streamed through a fixed chunk buffer into the CRC); the graph is
// immutable after construction, so the result is memoized — load paths that
// verify a graph against several derived artifacts (a snapshot header, then
// a serialized hierarchy) pay the array scan once.
func (g *Graph) Fingerprint() Fingerprint {
	g.fpOnce.Do(func() { g.fp = g.computeFingerprint() })
	return g.fp
}

func (g *Graph) computeFingerprint() Fingerprint {
	tab := crc64.MakeTable(crc64.ECMA)
	var crc uint64
	buf := make([]byte, 0, 64<<10)
	flush := func() {
		crc = crc64.Update(crc, tab, buf)
		buf = buf[:0]
	}
	for _, o := range g.offsets {
		if len(buf)+8 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(o))
	}
	for _, t := range g.targets {
		if len(buf)+4 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t))
	}
	for _, w := range g.weights {
		if len(buf)+4 > cap(buf) {
			flush()
		}
		buf = binary.LittleEndian.AppendUint32(buf, w)
	}
	flush()
	return Fingerprint{N: g.n, M: g.m, CRC: crc}
}

// FromCSR reconstructs a graph directly from its CSR arrays — the fast path
// for binary snapshot loading, where re-deriving the arrays from an edge list
// would dominate the load. The slices are adopted, not copied; callers must
// not retain them.
//
// FromCSR validates everything derivable in one O(n+m) pass: offset shape and
// monotonicity, target range, positive bounded weights. It does not re-check
// arc symmetry (an O(m) map pass): snapshot payloads carry a checksum and are
// only ever produced from validated Graph values, so asymmetry would mean a
// corruption the checksum already catches. Self-loop arcs (stored once) are
// counted to recover the undirected edge count.
func FromCSR(offsets []int64, targets []int32, weights []uint32) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: csr: empty offsets")
	}
	n := len(offsets) - 1
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: csr: %d vertices exceed int32", n)
	}
	if len(targets) != len(weights) {
		return nil, fmt.Errorf("graph: csr: %d targets but %d weights", len(targets), len(weights))
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr: offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(targets)) {
		return nil, fmt.Errorf("graph: csr: offsets end %d, want %d", offsets[n], len(targets))
	}
	g := &Graph{n: int32(n), offsets: offsets, targets: targets, weights: weights}
	var loops int64
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: csr: offsets not monotone at vertex %d", v)
		}
		for i := lo; i < hi; i++ {
			t := targets[i]
			if t < 0 || int(t) >= n {
				return nil, fmt.Errorf("graph: csr: arc %d targets out-of-range vertex %d", i, t)
			}
			w := weights[i]
			if w == 0 || w > MaxWeight {
				return nil, fmt.Errorf("graph: csr: arc %d weight %d out of [1,%d]", i, w, MaxWeight)
			}
			if t == int32(v) {
				loops++
			}
			if w > g.maxW {
				g.maxW = w
			}
			if g.minW == 0 || w < g.minW {
				g.minW = w
			}
		}
	}
	// Each undirected non-loop edge contributes two arcs; each self-loop one.
	if (int64(len(targets))-loops)%2 != 0 {
		return nil, fmt.Errorf("graph: csr: odd non-loop arc count %d", int64(len(targets))-loops)
	}
	g.m = (int64(len(targets))-loops)/2 + loops
	return g, nil
}

// FromCSRWithFingerprint is FromCSR for arrays whose integrity an outer
// checksum already guarantees and whose fingerprint was stored beside them:
// the stored counts are verified against the decoded arrays, and the stored
// CRC is adopted without a second O(n+m) array scan — the snapshot fast
// path. Artifacts later validated against this graph (a serialized
// hierarchy) compare their own stored CRC against the adopted one, so a
// mislabeled fingerprint cannot silently pair the graph with the wrong
// artifact; and structural validation always runs against the real arrays,
// so it cannot produce wrong answers either way.
func FromCSRWithFingerprint(offsets []int64, targets []int32, weights []uint32, fp Fingerprint) (*Graph, error) {
	g, err := FromCSR(offsets, targets, weights)
	if err != nil {
		return nil, err
	}
	if fp.N != g.n || fp.M != g.m {
		return nil, fmt.Errorf("graph: csr: stored fingerprint (n=%d m=%d) does not match arrays (n=%d m=%d)",
			fp.N, fp.M, g.n, g.m)
	}
	g.fpOnce.Do(func() { g.fp = fp })
	return g, nil
}

// FromCSRTrusted adopts CSR arrays in O(1), skipping the per-arc validation
// scan of FromCSR. It exists for the mmap snapshot fast path: the caller must
// hold proof that these exact bytes previously passed FromCSRWithFingerprint
// (a verified checksum binding the arrays to fp — the snapshot package's
// once-per-file verification registry). The derived scalars FromCSR would
// recompute (edge count, weight range) are supplied from the same verified
// artifact. Only shape checks that cost O(1) are performed; handing this
// function unproven arrays forfeits the package's validity invariants.
func FromCSRTrusted(offsets []int64, targets []int32, weights []uint32, fp Fingerprint, minW, maxW uint32) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: csr: empty offsets")
	}
	n := len(offsets) - 1
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: csr: %d vertices exceed int32", n)
	}
	if int32(n) != fp.N {
		return nil, fmt.Errorf("graph: csr: offsets describe %d vertices, fingerprint says %d", n, fp.N)
	}
	if len(targets) != len(weights) {
		return nil, fmt.Errorf("graph: csr: %d targets but %d weights", len(targets), len(weights))
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: csr: offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(targets)) {
		return nil, fmt.Errorf("graph: csr: offsets end %d, want %d", offsets[n], len(targets))
	}
	if fp.M < 0 || fp.M > int64(len(targets)) {
		return nil, fmt.Errorf("graph: csr: fingerprint edge count %d implausible for %d arcs", fp.M, len(targets))
	}
	g := &Graph{n: int32(n), m: fp.M, offsets: offsets, targets: targets, weights: weights, minW: minW, maxW: maxW}
	g.fpOnce.Do(func() { g.fp = fp })
	return g, nil
}
