package graph

import "testing"

func fpGraph() *Graph {
	b := NewBuilder(6)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(1, 2, 5)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(3, 4, 7)
	b.MustAddEdge(4, 4, 2) // self-loop
	return b.Build()
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	g := fpGraph()
	f1, f2 := g.Fingerprint(), g.Fingerprint()
	if f1 != f2 {
		t.Fatalf("fingerprint not deterministic: %v vs %v", f1, f2)
	}
	if f1.N != 6 || f1.M != 5 {
		t.Fatalf("fingerprint counts: %v", f1)
	}
	// Same structure, one weight changed: must differ.
	b := NewBuilder(6)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(1, 2, 5)
	b.MustAddEdge(2, 3, 2) // was 1
	b.MustAddEdge(3, 4, 7)
	b.MustAddEdge(4, 4, 2)
	if other := b.Build().Fingerprint(); other.CRC == f1.CRC {
		t.Fatalf("weight change did not change CRC: %v", other)
	}
	// Same n/m, different topology: must differ.
	b2 := NewBuilder(6)
	b2.MustAddEdge(0, 2, 3)
	b2.MustAddEdge(1, 2, 5)
	b2.MustAddEdge(2, 3, 1)
	b2.MustAddEdge(3, 4, 7)
	b2.MustAddEdge(4, 4, 2)
	if other := b2.Build().Fingerprint(); other.CRC == f1.CRC {
		t.Fatalf("topology change did not change CRC: %v", other)
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	for _, g := range []*Graph{fpGraph(), NewBuilder(0).Build(), NewBuilder(3).Build()} {
		g2, err := FromCSR(
			append([]int64(nil), g.AdjOffsets()...),
			append([]int32(nil), g.Targets()...),
			append([]uint32(nil), g.Weights()...))
		if err != nil {
			t.Fatalf("FromCSR(%v): %v", g, err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() ||
			g2.MinWeight() != g.MinWeight() || g2.MaxWeight() != g.MaxWeight() {
			t.Fatalf("FromCSR changed shape: %v vs %v", g2, g)
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("FromCSR changed fingerprint")
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("FromCSR result invalid: %v", err)
		}
	}
}

func TestFromCSRRejectsBadArrays(t *testing.T) {
	g := fpGraph()
	off := append([]int64(nil), g.AdjOffsets()...)
	tg := append([]int32(nil), g.Targets()...)
	wt := append([]uint32(nil), g.Weights()...)
	cases := map[string]func() error{
		"empty offsets": func() error { _, err := FromCSR(nil, tg, wt); return err },
		"bad first offset": func() error {
			o := append([]int64(nil), off...)
			o[0] = 1
			_, err := FromCSR(o, tg, wt)
			return err
		},
		"bad last offset": func() error {
			o := append([]int64(nil), off...)
			o[len(o)-1]++
			_, err := FromCSR(o, tg, wt)
			return err
		},
		"non-monotone": func() error {
			o := append([]int64(nil), off...)
			o[2], o[3] = o[3]+1, o[2]
			_, err := FromCSR(o, tg, wt)
			return err
		},
		"target out of range": func() error {
			tg2 := append([]int32(nil), tg...)
			tg2[0] = 99
			_, err := FromCSR(off, tg2, wt)
			return err
		},
		"zero weight": func() error {
			wt2 := append([]uint32(nil), wt...)
			wt2[0] = 0
			_, err := FromCSR(off, tg, wt2)
			return err
		},
		"length mismatch": func() error { _, err := FromCSR(off, tg, wt[:len(wt)-1]); return err },
	}
	for name, run := range cases {
		if err := run(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
