package graph

import (
	"fmt"
	"math"
	"sort"
)

// Overlay applies a pre-validated mutation batch to g copy-on-write and
// returns the mutated graph. The receiver is never modified. The three lists
// carry normalized mutations:
//
//   - set: every stored copy of edge (U,V) — all parallel arcs, both
//     directions — gets weight W. The edge must exist.
//   - ins: one new edge each (parallel copies and self-loops allowed, the
//     same latitude Builder.AddEdge gives generator input).
//   - del: every stored copy of edge (U,V) is removed. The edge must exist.
//
// The returned aliased flag reports the copy-on-write shape: a weight-only
// batch (ins and del empty) shares g's offsets and targets arrays wholesale
// and allocates only a patched weights array, so a caller serving g from an
// mmap'd snapshot must keep that mapping alive for the overlay's lifetime.
// Structural batches rebuild all three arrays, bulk-copying the contiguous
// adjacency runs of unmutated vertices, and alias nothing.
//
// Overlay re-checks endpoints, weights, and edge existence and reports
// violations as errors rather than corrupting the CSR; callers that already
// validated (internal/mutate does) can treat an error here as a bug.
func (g *Graph) Overlay(set, ins, del []Edge) (*Graph, bool, error) {
	for _, e := range set {
		if err := g.checkMutationEdge(e, true); err != nil {
			return nil, false, err
		}
	}
	for _, e := range ins {
		if err := g.checkMutationEdge(e, true); err != nil {
			return nil, false, err
		}
	}
	for _, e := range del {
		if err := g.checkMutationEdge(e, false); err != nil {
			return nil, false, err
		}
	}
	if len(ins) == 0 && len(del) == 0 {
		g2, err := g.overlayWeights(set)
		return g2, err == nil, err
	}
	g2, err := g.overlayStructural(set, ins, del)
	return g2, false, err
}

func (g *Graph) checkMutationEdge(e Edge, needWeight bool) error {
	if e.U < 0 || e.U >= g.n || e.V < 0 || e.V >= g.n {
		return fmt.Errorf("graph: overlay edge (%d,%d) out of range [0,%d)", e.U, e.V, g.n)
	}
	if needWeight {
		if e.W == 0 {
			return fmt.Errorf("graph: overlay edge (%d,%d) has zero weight", e.U, e.V)
		}
		if e.W > MaxWeight {
			return fmt.Errorf("graph: overlay edge (%d,%d) weight %d exceeds MaxWeight %d", e.U, e.V, e.W, MaxWeight)
		}
	}
	return nil
}

// patchArcs sets every arc u→v in targets/weights to weight w. It returns how
// many arcs it touched, and whether any overwritten weight sat on one of the
// given bounds (in which case that bound may no longer be achieved and needs a
// rescan).
func (g *Graph) patchArcs(weights []uint32, u, v int32, w, minW, maxW uint32) (int, bool) {
	patched, onBound := 0, false
	lo, hi := g.offsets[u], g.offsets[u+1]
	for i := lo; i < hi; i++ {
		if g.targets[i] == v {
			if weights[i] == minW || weights[i] == maxW {
				onBound = true
			}
			weights[i] = w
			patched++
		}
	}
	return patched, onBound
}

// overlayWeights is the zero-copy path: offsets and targets are shared with
// the parent, only the weights array is fresh.
func (g *Graph) overlayWeights(set []Edge) (*Graph, error) {
	weights := make([]uint32, len(g.weights))
	copy(weights, g.weights)
	boundHit := false
	for _, e := range set {
		n, hit := g.patchArcs(weights, e.U, e.V, e.W, g.minW, g.maxW)
		if e.U != e.V {
			n2, hit2 := g.patchArcs(weights, e.V, e.U, e.W, g.minW, g.maxW)
			n, hit = n+n2, hit || hit2
		}
		if n == 0 {
			return nil, fmt.Errorf("graph: overlay set_weight on missing edge (%d,%d)", e.U, e.V)
		}
		boundHit = boundHit || hit
	}
	g2 := &Graph{
		n:       g.n,
		m:       g.m,
		offsets: g.offsets,
		targets: g.targets,
		weights: weights,
	}
	g2.setWeightBounds(g, boundHit, set, nil)
	return g2, nil
}

// overlayStructural rebuilds the CSR arrays with deletions dropped and
// insertions appended to their endpoints' adjacency runs. Only the adjacency
// runs of mutated endpoints are walked arc-by-arc; the stretches of untouched
// vertices between them — almost the whole graph for a small delta — move as
// single bulk copies, which is what keeps a small structural overlay at
// memcpy speed instead of per-vertex bookkeeping over all n runs.
func (g *Graph) overlayStructural(set, ins, del []Edge) (*Graph, error) {
	n := int(g.n)
	// Group the structural ops by endpoint. Everything else is untouched.
	delAt := make(map[int32][]int32, 2*len(del))
	insAt := make(map[int32][]Edge, 2*len(ins))
	m2 := g.m
	boundHit := false
	for _, e := range del {
		dup := false
		for _, v := range delAt[e.U] {
			if v == e.V {
				dup = true
				break
			}
		}
		if dup {
			// The first delete already drops every copy; a second op on the
			// same pair deletes a missing edge.
			return nil, fmt.Errorf("graph: overlay delete of missing edge (%d,%d)", e.U, e.V)
		}
		matched := int64(0)
		lo, hi := g.offsets[e.U], g.offsets[e.U+1]
		for i := lo; i < hi; i++ {
			if g.targets[i] == e.V {
				matched++
				if g.weights[i] == g.minW || g.weights[i] == g.maxW {
					boundHit = true
				}
			}
		}
		if matched == 0 {
			return nil, fmt.Errorf("graph: overlay delete of missing edge (%d,%d)", e.U, e.V)
		}
		delAt[e.U] = append(delAt[e.U], e.V)
		if e.U != e.V {
			delAt[e.V] = append(delAt[e.V], e.U)
		}
		m2 -= matched
	}
	for _, e := range ins {
		insAt[e.U] = append(insAt[e.U], Edge{U: e.U, V: e.V, W: e.W})
		if e.U != e.V {
			insAt[e.V] = append(insAt[e.V], Edge{U: e.V, V: e.U, W: e.W})
		}
		m2++
	}
	verts := make([]int32, 0, len(delAt)+len(insAt))
	for v := range delAt {
		verts = append(verts, v)
	}
	for v := range insAt {
		if _, ok := delAt[v]; !ok {
			verts = append(verts, v)
		}
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })

	// Degree change per touched vertex: inserted arcs minus dropped arcs.
	degDelta := make(map[int32]int64, len(verts))
	for _, v := range verts {
		d := int64(len(insAt[v]))
		lo, hi := g.offsets[v], g.offsets[v+1]
		for i := lo; i < hi; i++ {
			for _, t := range delAt[v] {
				if g.targets[i] == t {
					d--
					break
				}
			}
		}
		degDelta[v] = d
	}

	offsets := make([]int64, n+1)
	ti := 0
	shift := int64(0)
	for v := 0; v < n; v++ {
		offsets[v] = g.offsets[v] + shift
		if ti < len(verts) && verts[ti] == int32(v) {
			shift += degDelta[verts[ti]]
			ti++
		}
	}
	offsets[n] = g.offsets[n] + shift

	targets := make([]int32, offsets[n])
	weights := make([]uint32, offsets[n])
	src, dst := int64(0), int64(0)
	for _, v := range verts {
		runStart := g.offsets[v]
		copy(targets[dst:], g.targets[src:runStart])
		copy(weights[dst:], g.weights[src:runStart])
		dst += runStart - src
		hi := g.offsets[v+1]
		dset := delAt[v]
		for i := runStart; i < hi; i++ {
			t := g.targets[i]
			dropped := false
			for _, d := range dset {
				if d == t {
					dropped = true
					break
				}
			}
			if dropped {
				continue
			}
			targets[dst] = t
			weights[dst] = g.weights[i]
			dst++
		}
		for _, e := range insAt[v] {
			targets[dst] = e.V
			weights[dst] = e.W
			dst++
		}
		if dst != offsets[v+1] {
			return nil, fmt.Errorf("graph: overlay arc accounting off at vertex %d: %d != %d", v, dst, offsets[v+1])
		}
		src = hi
	}
	copy(targets[dst:], g.targets[src:])
	copy(weights[dst:], g.weights[src:])

	g2 := &Graph{n: g.n, m: m2, offsets: offsets, targets: targets, weights: weights}
	// Weight patches land on the rebuilt arrays; a set on a deleted pair was
	// rejected by validation, but stay defensive.
	for _, e := range set {
		k, hit := g2.patchArcs(g2.weights, e.U, e.V, e.W, g.minW, g.maxW)
		if e.U != e.V {
			k2, hit2 := g2.patchArcs(g2.weights, e.V, e.U, e.W, g.minW, g.maxW)
			k, hit = k+k2, hit || hit2
		}
		if k == 0 {
			return nil, fmt.Errorf("graph: overlay set_weight on missing edge (%d,%d)", e.U, e.V)
		}
		boundHit = boundHit || hit
	}
	g2.setWeightBounds(g, boundHit, set, ins)
	return g2, nil
}

// setWeightBounds refreshes min/max weight after an overlay. When no removed
// or overwritten arc weight sat on one of the parent's bounds, the parent's
// extrema are still achieved by surviving arcs, so folding in the new arc
// weights gives the exact bounds without touching the weight array. Otherwise
// the old extremum may be gone and only a rescan is correct.
func (g2 *Graph) setWeightBounds(parent *Graph, boundHit bool, set, ins []Edge) {
	if boundHit {
		g2.recomputeWeightBounds()
		return
	}
	lo, hi := parent.minW, parent.maxW
	if parent.m == 0 {
		lo, hi = math.MaxUint32, 0
	}
	for _, e := range set {
		if e.W < lo {
			lo = e.W
		}
		if e.W > hi {
			hi = e.W
		}
	}
	for _, e := range ins {
		if e.W < lo {
			lo = e.W
		}
		if e.W > hi {
			hi = e.W
		}
	}
	if len(g2.weights) == 0 {
		g2.minW, g2.maxW = 0, 0
		return
	}
	g2.minW, g2.maxW = lo, hi
}

// recomputeWeightBounds rescans the weight array for min/max — the fallback
// when a mutation removed or overwrote an arc sitting on a bound, so the old
// extremum may no longer be achieved anywhere.
func (g *Graph) recomputeWeightBounds() {
	g.minW, g.maxW = 0, 0
	if len(g.weights) == 0 {
		return
	}
	g.minW = math.MaxUint32
	for _, w := range g.weights {
		if w > g.maxW {
			g.maxW = w
		}
		if w < g.minW {
			g.minW = w
		}
	}
}

// AliasesArrays reports whether other shares CSR array storage with g — the
// observable property of a weight-only Overlay, which generation lifetime
// management uses to decide whether a parent's backing mapping must outlive
// the child.
func (g *Graph) AliasesArrays(other *Graph) bool {
	if other == nil || len(g.offsets) == 0 || len(other.offsets) == 0 {
		return false
	}
	return &g.offsets[0] == &other.offsets[0]
}
