package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func mustBuild(t *testing.T, n int, edges [][3]int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(int32(e[0]), int32(e[1]), uint32(e[2])); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty graph has n=%d m=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// The zero value is a valid empty graph: deserializers (snapshot, tests)
// may hand Validate a Graph whose slices were never allocated, and that must
// be indistinguishable from NewBuilder(0).Build().
func TestZeroValueGraphValidates(t *testing.T) {
	var g Graph
	if err := g.Validate(); err != nil {
		t.Fatalf("zero-value Graph failed Validate: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.NumArcs() != 0 {
		t.Fatalf("zero-value graph has n=%d m=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
}

func TestSingleVertexNoEdges(t *testing.T) {
	g := mustBuild(t, 1, nil)
	if g.Degree(0) != 0 {
		t.Fatalf("degree = %d", g.Degree(0))
	}
	if g.MaxWeight() != 0 || g.MinWeight() != 0 {
		t.Fatalf("weights of edgeless graph: [%d,%d]", g.MinWeight(), g.MaxWeight())
	}
}

func TestTriangle(t *testing.T) {
	g := mustBuild(t, 3, [][3]int{{0, 1, 5}, {1, 2, 7}, {2, 0, 9}})
	if g.NumEdges() != 3 || g.NumArcs() != 6 {
		t.Fatalf("m=%d arcs=%d", g.NumEdges(), g.NumArcs())
	}
	for v := int32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(v))
		}
	}
	if g.MinWeight() != 5 || g.MaxWeight() != 9 {
		t.Fatalf("weight range [%d,%d]", g.MinWeight(), g.MaxWeight())
	}
	ts, ws := g.Neighbors(1)
	sum := uint32(0)
	for i := range ts {
		sum += ws[i]
	}
	if sum != 12 {
		t.Fatalf("vertex 1 incident weight sum = %d, want 12", sum)
	}
}

func TestSelfLoopStoredOnce(t *testing.T) {
	g := mustBuild(t, 2, [][3]int{{0, 0, 3}, {0, 1, 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d", g.NumEdges())
	}
	if g.Degree(0) != 2 { // one arc for the loop + one for (0,1)
		t.Fatalf("degree(0)=%d", g.Degree(0))
	}
	if g.NumArcs() != 3 {
		t.Fatalf("arcs=%d", g.NumArcs())
	}
}

func TestParallelEdgesKept(t *testing.T) {
	g := mustBuild(t, 2, [][3]int{{0, 1, 4}, {0, 1, 2}, {1, 0, 6}})
	if g.NumEdges() != 3 || g.Degree(0) != 3 || g.Degree(1) != 3 {
		t.Fatalf("parallel edges mishandled: m=%d deg0=%d deg1=%d", g.NumEdges(), g.Degree(0), g.Degree(1))
	}
}

func TestDropSelfLoops(t *testing.T) {
	b := NewBuilder(2).DropSelfLoops()
	b.MustAddEdge(0, 0, 3)
	b.MustAddEdge(0, 1, 1)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1", g.NumEdges())
	}
}

func TestDropParallelKeepsLightest(t *testing.T) {
	b := NewBuilder(3).DropParallelEdges()
	b.MustAddEdge(0, 1, 4)
	b.MustAddEdge(1, 0, 2)
	b.MustAddEdge(0, 1, 6)
	b.MustAddEdge(1, 2, 9)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2", g.NumEdges())
	}
	ts, ws := g.Neighbors(0)
	if len(ts) != 1 || ts[0] != 1 || ws[0] != 2 {
		t.Fatalf("kept edge (%v,%v); want (1, w=2)", ts, ws)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := b.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if err := b.AddEdge(0, 1, MaxWeight+1); err == nil {
		t.Error("oversized weight accepted")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := [][3]int{{0, 1, 5}, {1, 2, 7}, {2, 0, 9}, {3, 3, 2}, {1, 3, 1}}
	g := mustBuild(t, 4, in)
	out := g.Edges()
	if len(out) != len(in) {
		t.Fatalf("Edges() returned %d edges, want %d", len(out), len(in))
	}
	g2 := FromEdges(4, out)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumArcs() != g.NumArcs() {
		t.Fatalf("round trip changed sizes: %v vs %v", g2, g)
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Path 0-1-2-3 plus chord (0,3) and loop at 2.
	g := mustBuild(t, 4, [][3]int{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {0, 3, 4}, {2, 2, 5}})
	sub, new2old := g.InducedSubgraph([]int32{1, 2, 3})
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 {
		t.Fatalf("n=%d", sub.NumVertices())
	}
	// Edges kept: (1,2), (2,3), loop at 2 => 3 edges.
	if sub.NumEdges() != 3 {
		t.Fatalf("m=%d, want 3", sub.NumEdges())
	}
	if new2old[0] != 1 || new2old[1] != 2 || new2old[2] != 3 {
		t.Fatalf("mapping %v", new2old)
	}
}

func TestContract(t *testing.T) {
	// Two triangles joined by one heavy edge; contract each triangle.
	g := mustBuild(t, 6, [][3]int{
		{0, 1, 1}, {1, 2, 1}, {2, 0, 1},
		{3, 4, 1}, {4, 5, 1}, {5, 3, 1},
		{2, 3, 10},
	})
	label := []int32{0, 0, 0, 1, 1, 1}
	c := g.Contract(label, 2)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumVertices() != 2 || c.NumEdges() != 1 {
		t.Fatalf("contracted: %v", c)
	}
	ts, ws := c.Neighbors(0)
	if len(ts) != 1 || ts[0] != 1 || ws[0] != 10 {
		t.Fatalf("contracted edge wrong: %v %v", ts, ws)
	}
}

func TestContractKeepsMultiplicity(t *testing.T) {
	g := mustBuild(t, 4, [][3]int{{0, 2, 1}, {1, 3, 2}, {0, 1, 3}})
	label := []int32{0, 0, 1, 1}
	c := g.Contract(label, 2)
	// Edges (0,2) and (1,3) both become (0,1); the (0,1) edge disappears.
	if c.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2 (multiplicity preserved)", c.NumEdges())
	}
}

func TestContractZeroEdges(t *testing.T) {
	// 0 -0- 1 -5- 2 -0- 3, plus 0 -7- 3
	edges := []Edge{
		{0, 1, 0}, {1, 2, 5}, {2, 3, 0}, {0, 3, 7},
	}
	g, label := ContractZeroEdges(4, edges)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2 {
		t.Fatalf("n=%d, want 2", g.NumVertices())
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] {
		t.Fatalf("labels %v", label)
	}
	// Both positive edges survive ({0,1}-{2,3} twice: w=5 and w=7).
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2", g.NumEdges())
	}
}

func TestContractZeroEdgesDropsInternal(t *testing.T) {
	// Positive edge inside a zero-component is dropped.
	edges := []Edge{{0, 1, 0}, {0, 1, 9}, {1, 2, 4}}
	g, _ := ContractZeroEdges(3, edges)
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %v", g)
	}
}

func TestContractZeroEdgesNoZeros(t *testing.T) {
	edges := []Edge{{0, 1, 2}, {1, 2, 3}}
	g, label := ContractZeroEdges(3, edges)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
	for v, l := range label {
		if int32(v) != l {
			t.Fatalf("label[%d]=%d", v, l)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := mustBuild(t, 4, [][3]int{{0, 1, 1}, {0, 2, 1}, {0, 3, 1}})
	st := g.Degrees()
	if st.Min != 1 || st.Max != 3 || st.Mean != 1.5 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	g := mustBuild(t, 3, [][3]int{{0, 1, 1}})
	if g.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not positive")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := mustBuild(t, 3, [][3]int{{0, 1, 1}, {1, 2, 2}})
	g.targets[0] = 99
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range target")
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := mustBuild(t, 3, [][3]int{{0, 1, 1}})
	g.weights[0] = 7 // one direction only
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric arcs")
	}
}

// Property: for random edge lists, CSR degrees sum to arc count and Edges()
// reproduces the same multiset of edges.
func TestQuickCSRConsistency(t *testing.T) {
	r := rng.New(321)
	f := func(seed uint32) bool {
		n := int(seed%50) + 1
		m := int(seed % 200)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.MustAddEdge(int32(r.Intn(n)), int32(r.Intn(n)), uint32(r.Intn(100)+1))
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		total := 0
		for v := int32(0); v < int32(n); v++ {
			total += g.Degree(v)
		}
		if int64(total) != g.NumArcs() {
			return false
		}
		return len(g.Edges()) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: contracting by the identity labelling only removes self-loops.
func TestQuickContractIdentity(t *testing.T) {
	r := rng.New(654)
	f := func(seed uint32) bool {
		n := int(seed%40) + 2
		b := NewBuilder(n)
		loops := 0
		for i := 0; i < 3*n; i++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				loops++
			}
			b.MustAddEdge(u, v, uint32(r.Intn(9)+1))
		}
		g := b.Build()
		id := make([]int32, n)
		for i := range id {
			id[i] = int32(i)
		}
		c := g.Contract(id, n)
		return c.NumEdges() == g.NumEdges()-int64(loops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBuilderReuseAfterBuild(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 2)
	g1 := b.Build()
	b.MustAddEdge(1, 2, 3)
	g2 := b.Build()
	if g1.NumEdges() != 1 || g2.NumEdges() != 2 {
		t.Fatalf("builder reuse broken: %d, %d", g1.NumEdges(), g2.NumEdges())
	}
	if b.NumPendingEdges() != 2 {
		t.Fatalf("pending %d", b.NumPendingEdges())
	}
}

func TestNewBuilderPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}

func TestNeighborsAliasImmutable(t *testing.T) {
	g := mustBuild(t, 3, [][3]int{{0, 1, 5}, {1, 2, 7}})
	ts1, ws1 := g.Neighbors(1)
	ts2, ws2 := g.Neighbors(1)
	if &ts1[0] != &ts2[0] || &ws1[0] != &ws2[0] {
		t.Fatal("Neighbors should alias the same storage (zero-copy)")
	}
}
