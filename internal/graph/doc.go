// Package graph provides the compact undirected weighted graph representation
// shared by every algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: a single offsets
// array plus flat target/weight arrays with each undirected edge stored in
// both endpoints' adjacency lists. This is the representation used by the
// MTGL on the Cray MTA-2 and it is the natural layout for the flat parallel
// loops the paper's algorithms are built from.
//
// Edge weights are positive integers (Thorup's algorithm requires positive
// integer weights; zero-weight edges must be contracted first, see
// ContractZeroEdges). Vertices are identified by dense int32 indices.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package graph
