package graph

import (
	"testing"
)

func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(6)
	b.MustAddEdge(0, 1, 4)
	b.MustAddEdge(1, 2, 7)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(3, 4, 9)
	b.MustAddEdge(4, 0, 2)
	b.MustAddEdge(1, 3, 5)
	b.MustAddEdge(2, 2, 3) // self-loop
	b.MustAddEdge(0, 1, 6) // parallel copy of (0,1)
	return b.Build()
}

func TestOverlayWeightOnlyAliasesArrays(t *testing.T) {
	g := buildTestGraph(t)
	g2, aliased, err := g.Overlay([]Edge{{U: 2, V: 3, W: 8}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !aliased {
		t.Fatal("weight-only overlay must report aliased")
	}
	if !g.AliasesArrays(g2) {
		t.Fatal("weight-only overlay must share offsets/targets storage")
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("overlay invalid: %v", err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("weight-only overlay changed shape: %v vs %v", g2, g)
	}
	// Both arcs patched, parent untouched.
	ts, ws := g2.Neighbors(2)
	found := false
	for i, u := range ts {
		if u == 3 {
			found = true
			if ws[i] != 8 {
				t.Fatalf("arc 2->3 weight %d, want 8", ws[i])
			}
		}
	}
	if !found {
		t.Fatal("arc 2->3 missing")
	}
	_, pw := g.Neighbors(2)
	for i, u := range g.Targets()[g.AdjOffsets()[2]:g.AdjOffsets()[3]] {
		if u == 3 && pw[i] != 1 {
			t.Fatalf("parent weight mutated to %d", pw[i])
		}
	}
	if g2.MinWeight() != 2 || g2.MaxWeight() != 9 {
		t.Fatalf("weight bounds [%d,%d], want [2,9]", g2.MinWeight(), g2.MaxWeight())
	}
}

func TestOverlaySetWeightPatchesAllParallelCopies(t *testing.T) {
	g := buildTestGraph(t)
	g2, _, err := g.Overlay([]Edge{{U: 1, V: 0, W: 11}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v <= 1; v++ {
		ts, ws := g2.Neighbors(v)
		for i, u := range ts {
			if u == 1-v && ws[i] != 11 {
				t.Fatalf("arc %d->%d weight %d, want 11 (parallel copy missed)", v, u, ws[i])
			}
		}
	}
	if g2.MaxWeight() != 11 {
		t.Fatalf("max weight %d, want 11", g2.MaxWeight())
	}
}

func TestOverlayStructural(t *testing.T) {
	g := buildTestGraph(t)
	g2, aliased, err := g.Overlay(
		[]Edge{{U: 3, V: 4, W: 2}},
		[]Edge{{U: 0, V: 5, W: 3}, {U: 5, V: 5, W: 6}},
		[]Edge{{U: 0, V: 1}, {U: 2, V: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if aliased {
		t.Fatal("structural overlay must not alias")
	}
	if err := g2.Validate(); err != nil {
		t.Fatalf("overlay invalid: %v", err)
	}
	// 8 edges - 2 parallel (0,1) copies - 1 self-loop + 2 inserts = 7.
	if g2.NumEdges() != 7 {
		t.Fatalf("edges %d, want 7", g2.NumEdges())
	}
	for _, e := range g2.Edges() {
		if (e.U == 0 && e.V == 1) || (e.U == 1 && e.V == 0) {
			t.Fatalf("deleted edge (0,1) still present: %+v", e)
		}
		if e.U == 2 && e.V == 2 {
			t.Fatalf("deleted self-loop (2,2) still present")
		}
		if e.U == 3 && e.V == 4 && e.W != 2 {
			t.Fatalf("set_weight (3,4)=2 not applied: %+v", e)
		}
	}
	ts, ws := g2.Neighbors(5)
	if len(ts) != 2 {
		t.Fatalf("vertex 5 arcs %v, want [0, self-loop]", ts)
	}
	if g2.MinWeight() != 1 {
		t.Fatalf("min weight %d, want 1", g2.MinWeight())
	}
	_ = ws
	// Parent unchanged.
	if g.NumEdges() != 8 {
		t.Fatalf("parent edge count changed: %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("parent corrupted: %v", err)
	}
}

func TestOverlayRejectsBadMutations(t *testing.T) {
	g := buildTestGraph(t)
	cases := []struct {
		name          string
		set, ins, del []Edge
	}{
		{"set missing edge", []Edge{{U: 0, V: 3, W: 1}}, nil, nil},
		{"set zero weight", []Edge{{U: 0, V: 1, W: 0}}, nil, nil},
		{"set overweight", []Edge{{U: 0, V: 1, W: MaxWeight + 1}}, nil, nil},
		{"set out of range", []Edge{{U: 0, V: 99, W: 1}}, nil, nil},
		{"insert zero weight", nil, []Edge{{U: 0, V: 3, W: 0}}, nil},
		{"insert out of range", nil, []Edge{{U: -1, V: 3, W: 1}}, nil},
		{"delete missing edge", nil, nil, []Edge{{U: 0, V: 3}}},
		{"delete out of range", nil, nil, []Edge{{U: 6, V: 0}}},
		{"structural set missing", []Edge{{U: 0, V: 3, W: 1}}, []Edge{{U: 4, V: 5, W: 1}}, nil},
	}
	for _, tc := range cases {
		if _, _, err := g.Overlay(tc.set, tc.ins, tc.del); err == nil {
			t.Errorf("%s: overlay accepted an invalid mutation", tc.name)
		}
	}
}

func TestOverlayInsertParallelAndMaxWeightShift(t *testing.T) {
	g := buildTestGraph(t)
	// Delete the heaviest edge (3,4,w=9): max weight must drop.
	g2, _, err := g.Overlay(nil, nil, []Edge{{U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.MaxWeight() != 7 {
		t.Fatalf("max weight %d after deleting heaviest edge, want 7", g2.MaxWeight())
	}
	// Insert a parallel copy of an existing edge.
	g3, _, err := g2.Overlay(nil, []Edge{{U: 2, V: 3, W: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	ts, _ := g3.Neighbors(2)
	for _, u := range ts {
		if u == 3 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("parallel insert: %d copies of (2,3), want 2", count)
	}
}

func TestOverlayChainEquivalentToRebuild(t *testing.T) {
	g := buildTestGraph(t)
	g2, _, err := g.Overlay(nil, []Edge{{U: 4, V: 5, W: 8}}, []Edge{{U: 1, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	g3, _, err := g2.Overlay([]Edge{{U: 4, V: 5, W: 1}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rebuild the same edge multiset from scratch and compare as sets.
	want := map[Edge]int{}
	for _, e := range g3.Edges() {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		want[e]++
	}
	b := NewBuilder(6)
	b.MustAddEdge(0, 1, 4)
	b.MustAddEdge(1, 2, 7)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(3, 4, 9)
	b.MustAddEdge(4, 0, 2)
	b.MustAddEdge(2, 2, 3)
	b.MustAddEdge(0, 1, 6)
	b.MustAddEdge(4, 5, 1)
	ref := b.Build()
	got := map[Edge]int{}
	for _, e := range ref.Edges() {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		got[e]++
	}
	if len(want) != len(got) {
		t.Fatalf("edge multiset size differs: %d vs %d", len(want), len(got))
	}
	for e, c := range want {
		if got[e] != c {
			t.Fatalf("edge %+v count %d vs %d", e, c, got[e])
		}
	}
}
