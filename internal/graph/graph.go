package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Inf is the distance value used for unreachable vertices. It is small enough
// that Inf + maxWeight cannot overflow int64.
const Inf int64 = math.MaxInt64 / 4

// MaxWeight is the largest edge weight the builder accepts. Distances are
// accumulated in int64; n * MaxWeight must stay far below Inf.
const MaxWeight uint32 = 1 << 30

// Edge is one undirected edge of the input edge list.
type Edge struct {
	U, V int32  // endpoints
	W    uint32 // positive weight
}

// Graph is an undirected weighted graph in CSR form. The zero value is the
// empty graph. Graph values are immutable after construction and therefore
// safe for concurrent readers, which is what allows many simultaneous SSSP
// computations to share one graph (and one component hierarchy).
type Graph struct {
	n       int32
	m       int64   // number of undirected edges (arcs/2)
	offsets []int64 // len n+1; adjacency of v is [offsets[v], offsets[v+1])
	targets []int32 // len 2m
	weights []uint32
	maxW    uint32
	minW    uint32

	fpOnce sync.Once // memoizes Fingerprint (the arrays are immutable)
	fp     Fingerprint
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.n) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.m }

// NumArcs returns the number of directed arcs (2 * NumEdges, plus self-loop
// arcs which are stored once).
func (g *Graph) NumArcs() int64 { return int64(len(g.targets)) }

// MaxWeight returns the largest edge weight, or 0 for an edgeless graph.
func (g *Graph) MaxWeight() uint32 { return g.maxW }

// MinWeight returns the smallest edge weight, or 0 for an edgeless graph.
func (g *Graph) MinWeight() uint32 { return g.minW }

// Degree returns the number of arcs out of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency slices (targets and weights) of v. The
// returned slices alias the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v int32) ([]int32, []uint32) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.targets[lo:hi], g.weights[lo:hi]
}

// AdjOffsets returns the CSR offset array (length NumVertices+1). The slice
// aliases internal storage and must not be modified.
func (g *Graph) AdjOffsets() []int64 { return g.offsets }

// Targets returns the flat CSR target array. Read-only.
func (g *Graph) Targets() []int32 { return g.targets }

// Weights returns the flat CSR weight array. Read-only.
func (g *Graph) Weights() []uint32 { return g.weights }

// Edges returns the undirected edge list (each edge once, U <= V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for v := int32(0); v < g.n; v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			if u >= v { // emit each undirected edge once; self-loops stored once
				edges = append(edges, Edge{U: v, V: u, W: ws[i]})
			}
		}
	}
	return edges
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d w=[%d,%d]}", g.n, g.m, g.minW, g.maxW)
}

// Validate checks internal consistency of the CSR arrays. It is used by the
// test suite and by the DIMACS reader on untrusted input. The zero value is
// the empty graph and validates: nil arrays are the CSR form of zero vertices.
func (g *Graph) Validate() error {
	if g.n == 0 && len(g.offsets) == 0 {
		// The zero value stores no offsets array at all; constructed empty
		// graphs store the canonical [0] instead. Both are the empty graph.
		if len(g.targets) != 0 || len(g.weights) != 0 {
			return fmt.Errorf("graph: zero-vertex graph with %d targets and %d weights", len(g.targets), len(g.weights))
		}
		return nil
	}
	if int32(len(g.offsets)) != g.n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), g.n+1)
	}
	if len(g.targets) != len(g.weights) {
		return fmt.Errorf("graph: %d targets but %d weights", len(g.targets), len(g.weights))
	}
	if g.offsets[0] != 0 {
		return errors.New("graph: offsets[0] != 0")
	}
	for v := int32(0); v < g.n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if g.offsets[g.n] != int64(len(g.targets)) {
		return fmt.Errorf("graph: offsets end %d, want %d", g.offsets[g.n], len(g.targets))
	}
	for i, t := range g.targets {
		if t < 0 || t >= g.n {
			return fmt.Errorf("graph: arc %d targets out-of-range vertex %d", i, t)
		}
		if g.weights[i] == 0 {
			return fmt.Errorf("graph: arc %d has zero weight", i)
		}
	}
	// Undirectedness: multiset of (u,v,w) arcs must be symmetric.
	counts := make(map[[3]int64]int64)
	for v := int32(0); v < g.n; v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			if u == v {
				continue // self-loops are stored once
			}
			counts[[3]int64{int64(v), int64(u), int64(ws[i])}]++
			counts[[3]int64{int64(u), int64(v), int64(ws[i])}]--
		}
	}
	for k, c := range counts {
		if c != 0 {
			return fmt.Errorf("graph: asymmetric arc (%d,%d,w=%d)", k[0], k[1], k[2])
		}
	}
	return nil
}

// Builder accumulates an edge list and produces a CSR Graph. The DIMACS
// random generator "may produce parallel edges as well as self-loops"
// (paper §4.2); the builder preserves both unless DropParallelEdges/
// DropSelfLoops are set, matching the instances the paper studies.
type Builder struct {
	n            int32
	edges        []Edge
	dropLoops    bool
	dropParallel bool
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 || n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: invalid vertex count %d", n))
	}
	return &Builder{n: int32(n)}
}

// DropSelfLoops makes Build discard self-loops (they never affect shortest
// paths but do occupy storage).
func (b *Builder) DropSelfLoops() *Builder { b.dropLoops = true; return b }

// DropParallelEdges makes Build keep only the lightest copy of each parallel
// edge.
func (b *Builder) DropParallelEdges() *Builder { b.dropParallel = true; return b }

// AddEdge records one undirected edge. It returns an error for out-of-range
// endpoints or a non-positive/oversized weight.
func (b *Builder) AddEdge(u, v int32, w uint32) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if w == 0 {
		return fmt.Errorf("graph: edge (%d,%d) has zero weight; Thorup requires positive integer weights (contract zero-weight edges first)", u, v)
	}
	if w > MaxWeight {
		return fmt.Errorf("graph: edge (%d,%d) weight %d exceeds MaxWeight %d", u, v, w, MaxWeight)
	}
	b.edges = append(b.edges, Edge{U: u, V: v, W: w})
	return nil
}

// MustAddEdge is AddEdge that panics on error; used by tests and generators
// whose inputs are valid by construction.
func (b *Builder) MustAddEdge(u, v int32, w uint32) {
	if err := b.AddEdge(u, v, w); err != nil {
		panic(err)
	}
}

// NumPendingEdges reports how many edges have been added so far.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build produces the CSR graph. The builder may be reused afterwards.
func (b *Builder) Build() *Graph {
	edges := b.edges
	if b.dropLoops || b.dropParallel {
		edges = filterEdges(edges, b.dropLoops, b.dropParallel)
	}
	return FromEdges(int(b.n), edges)
}

func filterEdges(edges []Edge, dropLoops, dropParallel bool) []Edge {
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if dropLoops && e.U == e.V {
			continue
		}
		out = append(out, e)
	}
	if !dropParallel {
		return out
	}
	// Keep the lightest copy of each parallel edge.
	norm := func(e Edge) Edge {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		return e
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := norm(out[i]), norm(out[j])
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	dedup := out[:0]
	for i, e := range out {
		if i > 0 {
			p := norm(out[i-1])
			q := norm(e)
			if p.U == q.U && p.V == q.V {
				continue
			}
		}
		dedup = append(dedup, e)
	}
	return dedup
}

// FromEdges builds a CSR graph directly from an undirected edge list. Each
// edge {U,V,W} produces arcs in both adjacency lists (one arc for a
// self-loop). Weights must be positive; FromEdges panics otherwise, since the
// Builder and DIMACS reader validate weights at the boundary.
func FromEdges(n int, edges []Edge) *Graph {
	g := &Graph{n: int32(n)}
	g.offsets = make([]int64, n+1)
	// Counting pass.
	for _, e := range edges {
		if e.W == 0 {
			panic(fmt.Sprintf("graph: zero-weight edge (%d,%d)", e.U, e.V))
		}
		g.offsets[e.U+1]++
		if e.U != e.V {
			g.offsets[e.V+1]++
		}
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	total := g.offsets[n]
	g.targets = make([]int32, total)
	g.weights = make([]uint32, total)
	next := make([]int64, n)
	copy(next, g.offsets[:n])
	g.minW = math.MaxUint32
	for _, e := range edges {
		i := next[e.U]
		next[e.U]++
		g.targets[i] = e.V
		g.weights[i] = e.W
		if e.U != e.V {
			j := next[e.V]
			next[e.V]++
			g.targets[j] = e.U
			g.weights[j] = e.W
		}
		g.m++
		if e.W > g.maxW {
			g.maxW = e.W
		}
		if e.W < g.minW {
			g.minW = e.W
		}
	}
	if g.m == 0 {
		g.minW = 0
	}
	return g
}

// InducedSubgraph returns the subgraph induced by the given vertices together
// with the mapping from new vertex indices to old ones. This mirrors the MTGL
// subgraph-extraction primitive the paper leverages.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32) {
	old2new := make(map[int32]int32, len(vertices))
	new2old := make([]int32, len(vertices))
	for i, v := range vertices {
		old2new[v] = int32(i)
		new2old[i] = v
	}
	var edges []Edge
	for i, v := range vertices {
		ts, ws := g.Neighbors(v)
		for k, u := range ts {
			nu, ok := old2new[u]
			if !ok {
				continue
			}
			// Emit each undirected edge once: by (new endpoint) order.
			if u == v {
				// Self-loop: CSR stores it once, emit once.
				edges = append(edges, Edge{U: int32(i), V: int32(i), W: ws[k]})
			} else if nu > int32(i) {
				edges = append(edges, Edge{U: int32(i), V: nu, W: ws[k]})
			}
		}
	}
	return FromEdges(len(vertices), edges), new2old
}

// Contract collapses vertices into super-vertices according to label: every
// vertex v belongs to super-vertex label[v] (labels must be dense in
// [0, numLabels)). Edges inside a super-vertex disappear; edges between
// super-vertices are kept (with multiplicity, like Algorithm 1's G”
// construction in the paper). Self-loops created by contraction are dropped.
func (g *Graph) Contract(label []int32, numLabels int) *Graph {
	edges := make([]Edge, 0, g.m)
	for v := int32(0); v < g.n; v++ {
		ts, ws := g.Neighbors(v)
		lv := label[v]
		for i, u := range ts {
			if u < v {
				continue // each undirected edge once
			}
			lu := label[u]
			if lu == lv {
				continue
			}
			edges = append(edges, Edge{U: lv, V: lu, W: ws[i]})
		}
	}
	return FromEdges(numLabels, edges)
}

// ContractZeroEdges implements the preprocessing the paper notes is required
// when the input contains zero-weight edges (§2.1): vertices connected by
// zero-weight edges are merged into one vertex. It takes a raw edge list
// (which, unlike Builder input, may contain zero weights) and returns the
// contracted graph plus the mapping from original vertex to merged vertex.
func ContractZeroEdges(n int, edges []Edge) (*Graph, []int32) {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		if e.W == 0 {
			ru, rv := find(e.U), find(e.V)
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	// Dense renumbering of roots.
	label := make([]int32, n)
	next := int32(0)
	for v := 0; v < n; v++ {
		r := find(int32(v))
		if int32(v) == r {
			label[v] = next
			next++
		}
	}
	for v := 0; v < n; v++ {
		label[v] = label[find(int32(v))]
	}
	out := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.W == 0 {
			continue
		}
		lu, lv := label[e.U], label[e.V]
		if lu == lv {
			// A positive-weight edge whose endpoints are joined by zero-weight
			// paths can never be on a shortest path; drop it.
			continue
		}
		out = append(out, Edge{U: lu, V: lv, W: e.W})
	}
	return FromEdges(int(next), out), label
}

// DegreeStats summarises the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// Degrees computes degree statistics over all vertices.
func (g *Graph) Degrees() DegreeStats {
	if g.n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: math.MaxInt}
	total := 0
	for v := int32(0); v < g.n; v++ {
		d := g.Degree(v)
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		total += d
	}
	st.Mean = float64(total) / float64(g.n)
	return st
}

// MemoryBytes estimates the resident size of the CSR arrays, used for the
// Table 2 "instance memory" column.
func (g *Graph) MemoryBytes() int64 {
	return int64(len(g.offsets))*8 + int64(len(g.targets))*4 + int64(len(g.weights))*4
}
