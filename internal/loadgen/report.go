package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// LatencySummary holds exact percentiles over a set of client-observed
// latencies (not histogram-interpolated: every sample is kept and sorted, so
// the p999 of a 10k-request run is a real measurement).
type LatencySummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarize(ms []float64) LatencySummary {
	if len(ms) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(ms)
	sum := 0.0
	for _, v := range ms {
		sum += v
	}
	q := func(p float64) float64 {
		// Exact order statistic: the smallest value with at least a p
		// fraction of samples at or below it.
		i := int(math.Ceil(p*float64(len(ms)))) - 1
		if i < 0 {
			i = 0
		}
		return ms[i]
	}
	return LatencySummary{
		Count:  len(ms),
		MeanMs: sum / float64(len(ms)),
		P50Ms:  q(0.50),
		P95Ms:  q(0.95),
		P99Ms:  q(0.99),
		P999Ms: q(0.999),
		MaxMs:  ms[len(ms)-1],
	}
}

// EndpointReport is the per-endpoint slice of a report.
type EndpointReport struct {
	Requests int            `json:"requests"`
	OK       int            `json:"ok"`
	Shed     int            `json:"shed"`
	Timeout  int            `json:"timeout"`
	Errors   int            `json:"errors"`
	Latency  LatencySummary `json:"latency"`
}

// Report is the judged outcome of one workload run — what BENCH_serve.json
// commits and what SLO gates assert over.
type Report struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"`
	Requests int    `json:"requests"`

	WallSeconds float64 `json:"wall_seconds"`
	// OfferedRate is the spec's open-loop arrival rate (0 for closed-loop,
	// which has no offered rate independent of the system under test).
	OfferedRate float64 `json:"offered_rate_qps,omitempty"`
	// AchievedRate is completed requests (any outcome) per wall second.
	AchievedRate float64 `json:"achieved_rate_qps"`

	// StatusCounts counts responses by exact HTTP status ("200", "503", ...;
	// "err" for transport failures).
	StatusCounts map[string]int `json:"status_counts"`
	// OK counts 2xx responses; Shed counts 503s; Timeouts counts 504s;
	// TransportErrors counts requests that never got an HTTP response.
	OK              int `json:"ok"`
	Shed            int `json:"shed"`
	Timeouts        int `json:"timeouts"`
	TransportErrors int `json:"transport_errors"`
	// Errors is the SLO error count: transport errors plus 5xx responses
	// that are neither shed (503) nor deadline (504) — i.e. the responses
	// an operator would page on. ErrorRate is Errors over all requests.
	Errors    int     `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`

	// Latency summarizes successful (2xx) responses only: a shed answers in
	// microseconds and would flatter every percentile it is mixed into.
	Latency     LatencySummary             `json:"latency"`
	PerEndpoint map[string]*EndpointReport `json:"per_endpoint"`

	// PerBackend counts responses by the X-Backend header a routing tier
	// stamps (absent when the run talked to a backend directly). A fanned-out
	// batch names every shard backend; each is counted once.
	PerBackend map[string]int `json:"per_backend,omitempty"`

	// Metrics holds the daemon-side counter deltas over the run when the
	// run scraped /metrics (sheds, cache hits/misses, evictions, solves) —
	// the attribution half of the report: client-observed 503s should match
	// the daemon's shed counters, cache-hostile runs should show ~zero
	// cache hits, and so on.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`

	// SLO and Violations record the gate this run was judged against and
	// every failure (empty means the run passed).
	SLO        *SLO     `json:"slo,omitempty"`
	Violations []string `json:"violations,omitempty"`
}

// BuildReport judges a run outcome. The spec's SLO (if any) is evaluated and
// its violations recorded; callers gate on len(Violations).
func BuildReport(w *Workload, out *Outcome) *Report {
	r := &Report{
		Workload:     w.Spec.Name,
		Mode:         w.Spec.Mode,
		Requests:     len(out.Results),
		WallSeconds:  out.Wall.Seconds(),
		StatusCounts: make(map[string]int),
		PerEndpoint:  make(map[string]*EndpointReport),
		Metrics:      out.Metrics,
	}
	if w.Spec.Mode == ModeOpen {
		r.OfferedRate = w.Spec.Rate
	}
	if r.WallSeconds > 0 {
		r.AchievedRate = float64(len(out.Results)) / r.WallSeconds
	}
	var okMs []float64
	epMs := make(map[string][]float64)
	for i := range out.Results {
		res := &out.Results[i]
		ep := r.PerEndpoint[res.Endpoint]
		if ep == nil {
			ep = &EndpointReport{}
			r.PerEndpoint[res.Endpoint] = ep
		}
		ep.Requests++
		if res.Backend != "" {
			if r.PerBackend == nil {
				r.PerBackend = make(map[string]int)
			}
			for _, b := range strings.Split(res.Backend, ",") {
				r.PerBackend[b]++
			}
		}
		switch {
		case res.Err != "" && res.Status == 0:
			r.StatusCounts["err"]++
			r.TransportErrors++
			r.Errors++
			ep.Errors++
		default:
			r.StatusCounts[strconv.Itoa(res.Status)]++
			ms := float64(res.Latency) / 1e6
			switch {
			case res.Status >= 200 && res.Status < 300:
				r.OK++
				ep.OK++
				okMs = append(okMs, ms)
				epMs[res.Endpoint] = append(epMs[res.Endpoint], ms)
			case res.Status == 503:
				r.Shed++
				ep.Shed++
			case res.Status == 504:
				r.Timeouts++
				ep.Timeout++
			case res.Status >= 500:
				r.Errors++
				ep.Errors++
			default: // 4xx: the workload asked a malformed question
				r.Errors++
				ep.Errors++
			}
		}
	}
	if n := len(out.Results); n > 0 {
		r.ErrorRate = float64(r.Errors) / float64(n)
		r.ShedRate = float64(r.Shed) / float64(n)
	}
	r.Latency = summarize(okMs)
	for ep, ms := range epMs {
		r.PerEndpoint[ep].Latency = summarize(ms)
	}
	if w.Spec.SLO != nil {
		r.SLO = w.Spec.SLO
		r.Violations = w.Spec.SLO.Check(r)
	}
	return r
}

// Check evaluates the SLO against a report and returns one message per
// violated gate (empty means the report passes).
func (s *SLO) Check(r *Report) []string {
	var v []string
	if s.P99Ms > 0 && r.Latency.P99Ms > s.P99Ms {
		v = append(v, fmt.Sprintf("p99 %.2fms exceeds the %.2fms gate", r.Latency.P99Ms, s.P99Ms))
	}
	if s.P99Ms > 0 && r.Latency.Count == 0 {
		v = append(v, "p99 gate set but no request succeeded")
	}
	if s.MaxErrorRate != nil && r.ErrorRate > *s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.4f (%d/%d) exceeds the %.4f gate",
			r.ErrorRate, r.Errors, r.Requests, *s.MaxErrorRate))
	}
	if s.MaxShedRate != nil && r.ShedRate > *s.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.4f (%d/%d) exceeds the %.4f gate",
			r.ShedRate, r.Shed, r.Requests, *s.MaxShedRate))
	}
	if s.MinAchievedFraction > 0 && r.OfferedRate > 0 {
		if frac := r.AchievedRate / r.OfferedRate; frac < s.MinAchievedFraction {
			v = append(v, fmt.Sprintf("achieved rate %.1f/s is %.2f of the offered %.1f/s, below the %.2f gate",
				r.AchievedRate, frac, r.OfferedRate, s.MinAchievedFraction))
		}
	}
	return v
}
