// Package loadgen is the workload model and load generator for ssspd: it
// turns a small, committed JSON-lines spec into a deterministic sequence of
// HTTP requests (Zipf-skewed or cache-hostile source vertices, a weighted
// graph mix across catalog entries, a single/batch/mutate/?solver= endpoint
// mix — mutate requests carry deterministic insert-only edge deltas, so a
// mixed workload measures read latency under generation churn)
// and drives that sequence against a live daemon either open-loop (fixed
// offered arrival rate, unbounded concurrency — real queueing is measured,
// not hidden behind blocked workers) or closed-loop (a fixed worker count,
// each issuing the next request as soon as the previous one answers).
//
// A workload file is JSON lines: the first line is the Spec, optional
// further lines are the concrete expanded Request sequence. A header-only
// file is a generative spec — expansion from (spec, seed) is deterministic,
// byte-for-byte, so the committed artifact fully pins the traffic shape — and
// a file with request lines is a recording that replays identically
// (Workload.WriteTo / ReadWorkload are exact inverses).
//
// Runs stamp each request with a derived X-Trace-Id (so a slow outlier found
// in a report joins against the daemon's /debug/traces), optionally scrape
// GET /metrics before and after (obs.ScrapeMetrics) to attribute sheds,
// cache hits and evictions to the run, and produce a Report: exact
// p50/p95/p99/p999 latency, achieved vs offered rate, error/shed/timeout
// counts, a per-endpoint breakdown, and machine-checkable SLO assertions
// (SLO.Check) that `make bench-serve` turns into a regression gate.
//
// See DESIGN.md §11 ("Load generation & service benchmarks") and
// EXPERIMENTS.md ("Service benchmarks") for how the reports are read.
package loadgen
