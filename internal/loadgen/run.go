package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mutate"
	"repro/internal/obs"
)

// Options configures one workload run.
type Options struct {
	// BaseURL is the daemon under load, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client to use (default: a fresh client with no
	// timeout — the daemon's own -timeout answers 504; a client-side
	// deadline on top belongs to the caller).
	Client *http.Client
	// TracePrefix, when non-empty, stamps request i with
	// "X-Trace-Id: <prefix>-<i>" so outliers in the report join against the
	// daemon's /debug/traces.
	TracePrefix string
	// CaptureBodies retains each response body in its Result — for
	// correctness assertions in tests, not for load runs.
	CaptureBodies bool
	// ScrapeMetrics snapshots GET /metrics before and after the run and
	// reports the counter deltas in the report's "metrics" section.
	ScrapeMetrics bool
	// OnResult, when non-nil, observes each completed result (called from
	// the issuing goroutine; must be safe for concurrent use).
	OnResult func(*Result)
}

// Result is one executed request's outcome.
type Result struct {
	Index    int
	Endpoint string
	Graph    string
	// Status is the HTTP status code, or 0 on a transport error.
	Status int
	// Err is the transport error, if any.
	Err string
	// Latency is first-byte-to-last-byte client-observed time: from just
	// before the request is written to the full body being read.
	Latency time.Duration
	// StartOffset is when the request was issued, relative to run start.
	StartOffset time.Duration
	// RetryAfter reports whether a Retry-After header accompanied the
	// response (the daemon's shed and not-ready answers carry one).
	RetryAfter bool
	// TraceID is the X-Trace-Id echoed by the daemon ("" when untraced).
	TraceID string
	// Backend is the X-Backend header a routing tier stamps on responses
	// ("" when talking to a backend directly).
	Backend string
	// Body is the response body when Options.CaptureBodies is set.
	Body []byte
}

// Run executes the workload's request sequence against the daemon and
// returns the observed outcome. Open-loop mode fires each request at its
// recorded arrival offset regardless of how many are still in flight — the
// latency distribution then includes real queueing delay, which is the
// number a capacity claim must quote. Closed-loop mode runs Spec.Workers
// workers back to back, which measures service capacity but, at saturation,
// silently throttles the offered rate (coordinated omission); reports label
// the mode so the two are never compared as equals.
func Run(ctx context.Context, w *Workload, opts Options) (*Outcome, error) {
	if err := w.Expand(); err != nil {
		return nil, err
	}
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: Options.BaseURL required")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	var before, after *obs.MetricsSnapshot
	if opts.ScrapeMetrics {
		var err error
		if before, err = obs.ScrapeMetrics(ctx, client, opts.BaseURL); err != nil {
			return nil, fmt.Errorf("loadgen: pre-run metrics scrape: %w", err)
		}
	}
	out := &Outcome{Results: make([]Result, len(w.Requests))}
	start := time.Now()
	switch w.Spec.Mode {
	case ModeOpen:
		runOpen(ctx, w, client, opts, start, out.Results)
	default:
		runClosed(ctx, w, client, opts, start, out.Results)
	}
	out.Wall = time.Since(start)
	if opts.ScrapeMetrics {
		var err error
		if after, err = obs.ScrapeMetrics(ctx, client, opts.BaseURL); err != nil {
			return nil, fmt.Errorf("loadgen: post-run metrics scrape: %w", err)
		}
		out.Metrics = after.Sub(before)
	}
	return out, nil
}

// Outcome is the raw material of a report: every result plus the run's wall
// time and the daemon-side counter deltas.
type Outcome struct {
	Results []Result
	Wall    time.Duration
	Metrics *obs.MetricsSnapshot
}

func runOpen(ctx context.Context, w *Workload, client *http.Client, opts Options, start time.Time, results []Result) {
	var wg sync.WaitGroup
	for i := range w.Requests {
		req := &w.Requests[i]
		// Hold the line until this request's scheduled arrival. A cancelled
		// context stops issuing new requests; in-flight ones still finish
		// (their own contexts are cancelled too, so they fail fast).
		if d := time.Until(start.Add(req.At())); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			markCancelled(results[i:], w.Requests[i:], start, opts.OnResult)
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = execute(ctx, client, opts, start, &w.Requests[i])
			if opts.OnResult != nil {
				opts.OnResult(&results[i])
			}
		}(i)
	}
	wg.Wait()
}

func runClosed(ctx context.Context, w *Workload, client *http.Client, opts Options, start time.Time, results []Result) {
	workers := w.Spec.Workers
	if workers > len(w.Requests) {
		workers = len(w.Requests)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(w.Requests) || ctx.Err() != nil {
					return
				}
				results[i] = execute(ctx, client, opts, start, &w.Requests[i])
				if opts.OnResult != nil {
					opts.OnResult(&results[i])
				}
			}
		}()
	}
	wg.Wait()
	// Requests never claimed (cancellation) are marked, not left zeroed.
	for i := range results {
		if results[i].Endpoint == "" {
			results[i] = cancelledResult(&w.Requests[i], start)
			if opts.OnResult != nil {
				opts.OnResult(&results[i])
			}
		}
	}
}

func markCancelled(results []Result, reqs []Request, start time.Time, onResult func(*Result)) {
	for i := range results {
		results[i] = cancelledResult(&reqs[i], start)
		if onResult != nil {
			onResult(&results[i])
		}
	}
}

func cancelledResult(req *Request, start time.Time) Result {
	return Result{
		Index:       req.Index,
		Endpoint:    req.Endpoint,
		Graph:       req.Graph,
		Err:         "cancelled before issue",
		StartOffset: time.Since(start),
	}
}

// execute performs one request and records the client-observed outcome.
func execute(ctx context.Context, client *http.Client, opts Options, start time.Time, req *Request) Result {
	res := Result{Index: req.Index, Endpoint: req.Endpoint, Graph: req.Graph}
	hreq, err := buildHTTP(ctx, opts.BaseURL, req)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	if opts.TracePrefix != "" {
		res.TraceID = fmt.Sprintf("%s-%d", opts.TracePrefix, req.Index)
		hreq.Header.Set("X-Trace-Id", res.TraceID)
	}
	res.StartOffset = time.Since(start)
	t0 := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		res.Latency = time.Since(t0)
		res.Err = err.Error()
		return res
	}
	var body []byte
	if opts.CaptureBodies {
		body, err = io.ReadAll(resp.Body)
	} else {
		_, err = io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
	res.Latency = time.Since(t0)
	res.Status = resp.StatusCode
	res.RetryAfter = resp.Header.Get("Retry-After") != ""
	res.Backend = resp.Header.Get("X-Backend")
	if echoed := resp.Header.Get("X-Trace-Id"); echoed != "" {
		res.TraceID = echoed
	}
	res.Body = body
	if err != nil {
		res.Err = "reading body: " + err.Error()
	}
	return res
}

// buildHTTP shapes one generated request into its HTTP form.
func buildHTTP(ctx context.Context, base string, req *Request) (*http.Request, error) {
	q := url.Values{}
	q.Set("graph", req.Graph)
	if req.Solver != "" {
		q.Set("solver", req.Solver)
	}
	switch req.Endpoint {
	case EndpointSSSP:
		q.Set("src", strconv.FormatInt(int64(req.Src), 10))
		if req.Full {
			q.Set("full", "1")
		}
		return http.NewRequestWithContext(ctx, http.MethodGet, base+"/sssp?"+q.Encode(), nil)
	case EndpointDist:
		q.Set("src", strconv.FormatInt(int64(req.Src), 10))
		q.Set("dst", strconv.FormatInt(int64(req.Dst), 10))
		return http.NewRequestWithContext(ctx, http.MethodGet, base+"/dist?"+q.Encode(), nil)
	case EndpointBatch:
		type item struct {
			Src int32 `json:"src"`
		}
		items := make([]item, len(req.Srcs))
		for i, s := range req.Srcs {
			items[i] = item{Src: s}
		}
		body, err := json.Marshal(map[string]any{"queries": items, "solver": req.Solver})
		if err != nil {
			return nil, err
		}
		// The solver override travels in the body for /batch; drop it from
		// the query string so only ?graph= routes.
		q.Del("solver")
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/batch?"+q.Encode(), bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	case EndpointMutate:
		// The graph travels in the path for mutations; names were validated
		// URL-safe, so no escaping is needed.
		body, err := json.Marshal(&mutate.Batch{Ops: req.Ops})
		if err != nil {
			return nil, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/graphs/"+req.Graph+"/mutate", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		return hreq, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown endpoint %q", req.Endpoint)
	}
}
