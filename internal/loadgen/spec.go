package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"repro/internal/graph"
	"repro/internal/mutate"
)

// Limits on what a spec may ask for. They bound what a hostile or corrupted
// workload file can make the generator allocate, and double as sanity rails
// for hand-written specs (a million-request open-loop run against a test
// daemon is a typo, not a plan).
const (
	// MaxRequests caps the expanded request count of one workload.
	MaxRequests = 1 << 20
	// MaxBatchSize caps sources per generated /batch request, matching the
	// daemon's own per-request item limit.
	MaxBatchSize = 4096
	// MaxVertices caps a graph-mix entry's declared vertex count (it sizes
	// the Zipf sampler's cumulative table).
	MaxVertices = 1 << 24
	// MaxWorkers caps closed-loop concurrency.
	MaxWorkers = 4096
	// MaxMutateOps caps ops per generated mutate delta — far below the
	// daemon's own mutate.MaxOps, because a load generator emitting huge
	// deltas is measuring the rebuild path, not serving under churn.
	MaxMutateOps = 1024
	// MaxRate caps the open-loop offered rate in requests/second.
	MaxRate = 1e6
	// maxNameLen caps workload/graph/endpoint/solver name lengths.
	maxNameLen = 128
	// maxLineBytes caps one JSON line of a workload file.
	maxLineBytes = 1 << 20
)

// Endpoint names a request shape the generator can emit.
const (
	EndpointSSSP   = "sssp"   // GET /sssp?src=
	EndpointDist   = "dist"   // GET /dist?src=&dst=
	EndpointBatch  = "batch"  // POST /batch
	EndpointMutate = "mutate" // POST /graphs/{name}/mutate
)

// Modes of driving the request sequence.
const (
	ModeOpen   = "open"   // fixed arrival schedule, unbounded concurrency
	ModeClosed = "closed" // fixed worker count, no schedule
)

// GraphMix is one entry of the workload's graph mix: requests are routed to
// Graph in proportion to Weight, and source vertices are drawn from [0, N).
// N must match the vertex count of the graph the target daemon serves under
// that name — the generator is hermetic and never asks the server.
type GraphMix struct {
	Graph  string  `json:"graph"`
	N      int32   `json:"n"`
	Weight float64 `json:"weight"`
}

// Weighted is a weighted choice by name (endpoint mix, solver mix).
type Weighted struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
}

// SLO is a machine-checkable service-level objective over one Report.
// P99Ms and MinAchievedFraction enable when positive; the rate gates are
// pointers so that an omitted JSON field disables the gate while an explicit
// 0 is a meaningful, strict "none allowed".
type SLO struct {
	// P99Ms gates the p99 latency of successful responses, in milliseconds
	// (0 or negative disables).
	P99Ms float64 `json:"p99_ms,omitempty"`
	// MaxErrorRate gates Report.ErrorRate — transport errors plus non-shed
	// 5xx and 4xx responses, as a fraction of all requests (nil disables;
	// an explicit 0 means "no errors tolerated").
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// MaxShedRate gates the fraction of requests shed with 503 (nil
	// disables). Sheds are correct overload behavior, so most specs leave
	// this disabled and gate errors + p99 instead.
	MaxShedRate *float64 `json:"max_shed_rate,omitempty"`
	// MinAchievedFraction gates achieved/offered rate for open-loop runs
	// (0 or negative disables): a run that cannot keep up with its own
	// schedule is not measuring the offered rate it claims.
	MinAchievedFraction float64 `json:"min_achieved_fraction,omitempty"`
}

// Spec is the header line of a workload file: everything needed to expand a
// deterministic request sequence and judge the run that executes it.
type Spec struct {
	// Name identifies the workload in reports and BENCH_serve.json.
	Name string `json:"workload"`
	// Version is the format version; currently always 1.
	Version int `json:"v"`
	// Seed drives every random choice of the expansion.
	Seed uint64 `json:"seed"`
	// Requests is the expanded sequence length.
	Requests int `json:"requests"`
	// Mode is ModeOpen or ModeClosed.
	Mode string `json:"mode"`
	// Rate is the open-loop offered arrival rate in requests/second
	// (Poisson arrivals; ignored closed-loop).
	Rate float64 `json:"rate_qps,omitempty"`
	// Workers is the closed-loop concurrency (ignored open-loop).
	Workers int `json:"workers,omitempty"`
	// ZipfS is the source-vertex skew exponent: vertex k is drawn with
	// probability proportional to 1/(k+1)^ZipfS. 0 means uniform.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// CacheHostile draws sources by striding through the vertex set so no
	// source repeats within n requests to one graph: every query misses the
	// result cache and defeats singleflight dedup. Overrides ZipfS.
	CacheHostile bool `json:"cache_hostile,omitempty"`
	// BatchSize is the number of single-source queries per generated /batch
	// request (default 16).
	BatchSize int `json:"batch_size,omitempty"`
	// FullFraction is the fraction of sssp requests asking for the full
	// distance vector (full=1) rather than the summary.
	FullFraction float64 `json:"full_fraction,omitempty"`
	// MutateOps is the number of edge-insert ops per generated mutate delta
	// (default 4, clamped to the target graph's vertex count). The generator
	// emits insert-only deltas: it is hermetic and cannot know which edges
	// exist on the server, and inserts are valid against any graph state.
	MutateOps int `json:"mutate_ops,omitempty"`
	// Graphs is the weighted graph mix (required, at least one entry).
	Graphs []GraphMix `json:"graphs"`
	// Endpoints is the weighted endpoint mix (default: all sssp).
	Endpoints []Weighted `json:"endpoints,omitempty"`
	// Solvers is the weighted ?solver= mix; the empty name means "let the
	// daemon's policy choose" (default: always policy).
	Solvers []Weighted `json:"solvers,omitempty"`
	// SLO, when present, is the gate `make bench-serve` and cmd/loadgen
	// assert over the run's report.
	SLO *SLO `json:"slo,omitempty"`
}

// Request is one concrete generated request — a line of a recorded workload.
type Request struct {
	// Index is the position in the sequence (0-based).
	Index int `json:"i"`
	// AtUS is the open-loop arrival offset from run start, in microseconds.
	AtUS int64 `json:"at_us"`
	// Endpoint is EndpointSSSP, EndpointDist, or EndpointBatch.
	Endpoint string `json:"ep"`
	// Graph routes the request (?graph=).
	Graph string `json:"graph"`
	// Src is the source vertex (sssp, dist).
	Src int32 `json:"src,omitempty"`
	// Dst is the target vertex (dist only).
	Dst int32 `json:"dst,omitempty"`
	// Full asks /sssp for the full distance vector.
	Full bool `json:"full,omitempty"`
	// Solver is the ?solver= override ("" = daemon policy).
	Solver string `json:"solver,omitempty"`
	// Srcs are the per-item sources of a /batch request.
	Srcs []int32 `json:"srcs,omitempty"`
	// Ops is the concrete delta of a mutate request (insert ops only).
	Ops []mutate.Op `json:"ops,omitempty"`
}

// At returns the request's arrival offset as a duration.
func (r *Request) At() time.Duration { return time.Duration(r.AtUS) * time.Microsecond }

// Workload is a spec plus its concrete request sequence. Requests is nil for
// a header-only (generative) workload until Expand is called.
type Workload struct {
	Spec     Spec
	Requests []Request
}

// nameOK admits the names that can travel in a URL query string and an
// X-Trace-Id header without escaping surprises.
func nameOK(s string) bool {
	if len(s) == 0 || len(s) > maxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

func finiteNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// weightsOK validates a weighted-choice list: finite non-negative weights
// with a positive sum.
func weightsOK(ws []float64) error {
	sum := 0.0
	for _, w := range ws {
		if !finiteNonNeg(w) {
			return fmt.Errorf("weight %v is not a finite non-negative number", w)
		}
		sum += w
	}
	if !(sum > 0) {
		return fmt.Errorf("weights sum to %v, need > 0", sum)
	}
	return nil
}

// Validate checks the spec against the format's limits. A valid spec is one
// Expand accepts; every reader path validates before returning.
func (s *Spec) Validate() error {
	if s.Version != 1 {
		return fmt.Errorf("loadgen: unsupported workload version %d", s.Version)
	}
	if !nameOK(s.Name) {
		return fmt.Errorf("loadgen: bad workload name %q", s.Name)
	}
	if s.Requests < 1 || s.Requests > MaxRequests {
		return fmt.Errorf("loadgen: requests %d out of range [1,%d]", s.Requests, MaxRequests)
	}
	switch s.Mode {
	case ModeOpen:
		if !finiteNonNeg(s.Rate) || s.Rate <= 0 || s.Rate > MaxRate {
			return fmt.Errorf("loadgen: open-loop rate_qps %v out of range (0,%g]", s.Rate, float64(MaxRate))
		}
	case ModeClosed:
		if s.Workers < 1 || s.Workers > MaxWorkers {
			return fmt.Errorf("loadgen: closed-loop workers %d out of range [1,%d]", s.Workers, MaxWorkers)
		}
	default:
		return fmt.Errorf("loadgen: mode %q is neither %q nor %q", s.Mode, ModeOpen, ModeClosed)
	}
	if !finiteNonNeg(s.ZipfS) || s.ZipfS > 20 {
		return fmt.Errorf("loadgen: zipf_s %v out of range [0,20]", s.ZipfS)
	}
	if s.BatchSize < 0 || s.BatchSize > MaxBatchSize {
		return fmt.Errorf("loadgen: batch_size %d out of range [0,%d]", s.BatchSize, MaxBatchSize)
	}
	if !finiteNonNeg(s.FullFraction) || s.FullFraction > 1 {
		return fmt.Errorf("loadgen: full_fraction %v out of range [0,1]", s.FullFraction)
	}
	if s.MutateOps < 0 || s.MutateOps > MaxMutateOps {
		return fmt.Errorf("loadgen: mutate_ops %d out of range [0,%d]", s.MutateOps, MaxMutateOps)
	}
	if len(s.Graphs) == 0 {
		return fmt.Errorf("loadgen: graph mix is empty")
	}
	gw := make([]float64, len(s.Graphs))
	for i, g := range s.Graphs {
		if !nameOK(g.Graph) {
			return fmt.Errorf("loadgen: bad graph name %q", g.Graph)
		}
		if g.N < 1 || g.N > MaxVertices {
			return fmt.Errorf("loadgen: graph %s vertex count %d out of range [1,%d]", g.Graph, g.N, MaxVertices)
		}
		gw[i] = g.Weight
	}
	if err := weightsOK(gw); err != nil {
		return fmt.Errorf("loadgen: graph mix: %w", err)
	}
	ew := make([]float64, len(s.Endpoints))
	for i, e := range s.Endpoints {
		switch e.Name {
		case EndpointSSSP, EndpointDist, EndpointBatch, EndpointMutate:
		default:
			return fmt.Errorf("loadgen: unknown endpoint %q", e.Name)
		}
		ew[i] = e.Weight
	}
	if len(s.Endpoints) > 0 {
		if err := weightsOK(ew); err != nil {
			return fmt.Errorf("loadgen: endpoint mix: %w", err)
		}
	}
	sw := make([]float64, len(s.Solvers))
	for i, sv := range s.Solvers {
		if sv.Name != "" && !nameOK(sv.Name) {
			return fmt.Errorf("loadgen: bad solver name %q", sv.Name)
		}
		sw[i] = sv.Weight
	}
	if len(s.Solvers) > 0 {
		if err := weightsOK(sw); err != nil {
			return fmt.Errorf("loadgen: solver mix: %w", err)
		}
	}
	if s.SLO != nil {
		gates := []float64{s.SLO.P99Ms, s.SLO.MinAchievedFraction}
		if s.SLO.MaxErrorRate != nil {
			gates = append(gates, *s.SLO.MaxErrorRate)
		}
		if s.SLO.MaxShedRate != nil {
			gates = append(gates, *s.SLO.MaxShedRate)
		}
		for _, v := range gates {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("loadgen: slo gate %v is not finite", v)
			}
		}
	}
	return nil
}

// graphN returns the declared vertex count of a graph in the mix.
func (s *Spec) graphN(name string) (int32, bool) {
	for _, g := range s.Graphs {
		if g.Graph == name {
			return g.N, true
		}
	}
	return 0, false
}

// validateRequest checks one recorded request line against the spec — a
// replay must never emit a request the spec could not have generated the
// shape of (the concrete choice sequence, of course, is the recording's).
func (s *Spec) validateRequest(i int, r *Request) error {
	if r.Index != i {
		return fmt.Errorf("loadgen: request line %d carries index %d", i, r.Index)
	}
	if r.AtUS < 0 {
		return fmt.Errorf("loadgen: request %d has negative arrival offset %d", i, r.AtUS)
	}
	n, ok := s.graphN(r.Graph)
	if !ok {
		return fmt.Errorf("loadgen: request %d targets graph %q, which is not in the spec's mix", i, r.Graph)
	}
	inRange := func(v int32) bool { return v >= 0 && v < n }
	switch r.Endpoint {
	case EndpointSSSP:
		if !inRange(r.Src) {
			return fmt.Errorf("loadgen: request %d src %d out of range [0,%d)", i, r.Src, n)
		}
	case EndpointDist:
		if !inRange(r.Src) || !inRange(r.Dst) {
			return fmt.Errorf("loadgen: request %d src/dst %d/%d out of range [0,%d)", i, r.Src, r.Dst, n)
		}
	case EndpointBatch:
		if len(r.Srcs) < 1 || len(r.Srcs) > MaxBatchSize {
			return fmt.Errorf("loadgen: request %d batch size %d out of range [1,%d]", i, len(r.Srcs), MaxBatchSize)
		}
		for _, v := range r.Srcs {
			if !inRange(v) {
				return fmt.Errorf("loadgen: request %d batch source %d out of range [0,%d)", i, v, n)
			}
		}
	case EndpointMutate:
		if len(r.Ops) < 1 || len(r.Ops) > MaxMutateOps {
			return fmt.Errorf("loadgen: request %d delta size %d out of range [1,%d]", i, len(r.Ops), MaxMutateOps)
		}
		seen := make(map[[2]int32]bool, len(r.Ops))
		for j, op := range r.Ops {
			if op.Op != mutate.OpInsert {
				return fmt.Errorf("loadgen: request %d op %d is %q; generated deltas are insert-only", i, j, op.Op)
			}
			if !inRange(op.U) || !inRange(op.V) {
				return fmt.Errorf("loadgen: request %d op %d edge (%d,%d) out of range [0,%d)", i, j, op.U, op.V, n)
			}
			if op.W < 1 || op.W > graph.MaxWeight {
				return fmt.Errorf("loadgen: request %d op %d weight %d out of range [1,%d]", i, j, op.W, graph.MaxWeight)
			}
			u, v := op.U, op.V
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				return fmt.Errorf("loadgen: request %d has two ops on edge (%d,%d)", i, u, v)
			}
			seen[[2]int32{u, v}] = true
		}
	default:
		return fmt.Errorf("loadgen: request %d has unknown endpoint %q", i, r.Endpoint)
	}
	if r.Solver != "" && !nameOK(r.Solver) {
		return fmt.Errorf("loadgen: request %d has bad solver %q", i, r.Solver)
	}
	return nil
}

// WriteTo writes the workload as JSON lines: the spec header, then one line
// per request (none for a header-only workload). The encoding is canonical —
// encoding/json with fixed field order — so identical workloads produce
// identical bytes, which is what makes a recorded traffic shape diffable.
func (w *Workload) WriteTo(out io.Writer) (int64, error) {
	bw := bufio.NewWriter(out)
	var n int64
	writeLine := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		m, err := bw.Write(append(b, '\n'))
		n += int64(m)
		return err
	}
	if err := writeLine(&w.Spec); err != nil {
		return n, err
	}
	for i := range w.Requests {
		if err := writeLine(&w.Requests[i]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// WriteFile writes the workload to path (0644, truncating).
func (w *Workload) WriteFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := w.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeLine strictly decodes one JSON-lines record: unknown fields and
// trailing garbage on the line are errors, so a typo'd spec fails loudly
// instead of silently running the default shape.
func decodeLine(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// ReadWorkload parses a workload file: a spec header line, then zero or more
// recorded request lines. The result is validated; a header-only workload
// comes back with nil Requests and expands on demand.
func ReadWorkload(r io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
	line, ok, err := nextLine(sc)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("loadgen: empty workload file")
	}
	var w Workload
	if err := decodeLine(line, &w.Spec); err != nil {
		return nil, fmt.Errorf("loadgen: bad spec line: %w", err)
	}
	if err := w.Spec.Validate(); err != nil {
		return nil, err
	}
	for i := 0; ; i++ {
		line, ok, err := nextLine(sc)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if i >= w.Spec.Requests {
			return nil, fmt.Errorf("loadgen: more recorded requests than the spec's %d", w.Spec.Requests)
		}
		var req Request
		if err := decodeLine(line, &req); err != nil {
			return nil, fmt.Errorf("loadgen: bad request line %d: %w", i, err)
		}
		if err := w.Spec.validateRequest(i, &req); err != nil {
			return nil, err
		}
		w.Requests = append(w.Requests, req)
	}
	if w.Requests != nil && len(w.Requests) != w.Spec.Requests {
		return nil, fmt.Errorf("loadgen: recording has %d requests, spec says %d", len(w.Requests), w.Spec.Requests)
	}
	return &w, nil
}

// nextLine returns the next non-empty line.
func nextLine(sc *bufio.Scanner) ([]byte, bool, error) {
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) > 0 {
			return line, true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("loadgen: reading workload: %w", err)
	}
	return nil, false, nil
}

// ReadFile reads a workload file from path.
func ReadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadWorkload(f)
}
