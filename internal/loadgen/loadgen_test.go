package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mutate"
)

func testSpec() Spec {
	return Spec{
		Name:     "unit",
		Version:  1,
		Seed:     7,
		Requests: 200,
		Mode:     ModeOpen,
		Rate:     5000,
		ZipfS:    1.1,
		Graphs: []GraphMix{
			{Graph: "a", N: 500, Weight: 3},
			{Graph: "b", N: 300, Weight: 1},
		},
		Endpoints: []Weighted{
			{Name: EndpointSSSP, Weight: 4},
			{Name: EndpointDist, Weight: 2},
			{Name: EndpointBatch, Weight: 1},
		},
		Solvers:   []Weighted{{Name: "", Weight: 3}, {Name: "dijkstra", Weight: 1}},
		BatchSize: 8,
	}
}

// Same seed + spec must expand to the byte-identical request sequence — the
// property that makes a committed header-only spec a pinned traffic shape.
func TestGenerateDeterministic(t *testing.T) {
	spec := testSpec()
	r1, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two expansions of the same spec differ")
	}
	b1 := marshalAll(t, r1)
	b2 := marshalAll(t, r2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("serialized expansions differ byte-wise")
	}
	// A different seed must actually change the sequence.
	spec.Seed = 8
	r3, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1, r3) {
		t.Fatal("changing the seed did not change the sequence")
	}
}

func marshalAll(t *testing.T, reqs []Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := range reqs {
		b, err := json.Marshal(&reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// A recorded workload must replay identically: WriteTo then ReadWorkload
// yields an equal workload, and re-serializing gives identical bytes.
func TestRecordReplayRoundTrip(t *testing.T) {
	w := &Workload{Spec: testSpec()}
	if err := w.Expand(); err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if _, err := w.WriteTo(&rec); err != nil {
		t.Fatal(err)
	}
	recorded := append([]byte(nil), rec.Bytes()...)

	w2, err := ReadWorkload(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Spec, w2.Spec) {
		t.Fatalf("spec changed through the round trip:\n%+v\n%+v", w.Spec, w2.Spec)
	}
	if !reflect.DeepEqual(w.Requests, w2.Requests) {
		t.Fatal("request sequence changed through the round trip")
	}
	var rec2 bytes.Buffer
	if _, err := w2.WriteTo(&rec2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded, rec2.Bytes()) {
		t.Fatal("recording is not byte-stable through read+rewrite")
	}

	// A header-only file expands to the same sequence as the recording.
	header := &Workload{Spec: testSpec()}
	var hdr bytes.Buffer
	if _, err := header.WriteTo(&hdr); err != nil {
		t.Fatal(err)
	}
	w3, err := ReadWorkload(&hdr)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Requests != nil {
		t.Fatal("header-only workload came back with requests")
	}
	if err := w3.Expand(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w.Requests, w3.Requests) {
		t.Fatal("header-only expansion differs from the recording")
	}
}

// The Zipf source model must actually skew: the most popular source of a
// skewed workload takes far more than a uniform share, and every generated
// vertex stays in range.
func TestZipfSkewAndRanges(t *testing.T) {
	spec := testSpec()
	spec.Requests = 2000
	spec.Endpoints = []Weighted{{Name: EndpointSSSP, Weight: 1}}
	reqs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]map[int32]int{"a": {}, "b": {}}
	for i := range reqs {
		r := &reqs[i]
		n, ok := spec.graphN(r.Graph)
		if !ok {
			t.Fatalf("request %d targets unknown graph %q", i, r.Graph)
		}
		if r.Src < 0 || r.Src >= n {
			t.Fatalf("request %d src %d out of range [0,%d)", i, r.Src, n)
		}
		counts[r.Graph][r.Src]++
	}
	total, top := 0, 0
	for src, c := range counts["a"] {
		total += c
		if c > top {
			top = c
		}
		_ = src
	}
	// Uniform over 500 vertices would put ~total/500 on the mode; Zipf s=1.1
	// puts a large multiple of that on vertex 0.
	if top < 10*total/500 {
		t.Fatalf("zipf skew invisible: top source has %d of %d requests", top, total)
	}
}

// Cache-hostile generation must not repeat a source within one graph's
// vertex-count window.
func TestCacheHostileNeverRepeatsEarly(t *testing.T) {
	spec := testSpec()
	spec.CacheHostile = true
	spec.Requests = 290 // fewer than either graph's N
	spec.Endpoints = []Weighted{{Name: EndpointSSSP, Weight: 1}}
	reqs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]map[int32]bool{"a": {}, "b": {}}
	for i := range reqs {
		r := &reqs[i]
		if seen[r.Graph][r.Src] {
			t.Fatalf("cache-hostile workload repeated src %d on graph %s at request %d", r.Src, r.Graph, i)
		}
		seen[r.Graph][r.Src] = true
	}
}

// Hostile validation inputs must be rejected, not expanded.
func TestValidateRejects(t *testing.T) {
	cases := []func(*Spec){
		func(s *Spec) { s.Version = 2 },
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Name = strings.Repeat("x", 200) },
		func(s *Spec) { s.Name = "bad name" },
		func(s *Spec) { s.Requests = 0 },
		func(s *Spec) { s.Requests = MaxRequests + 1 },
		func(s *Spec) { s.Mode = "sideways" },
		func(s *Spec) { s.Rate = 0 },
		func(s *Spec) { s.Rate = -4 },
		func(s *Spec) { s.Rate = 1e18 },
		func(s *Spec) { s.Mode = ModeClosed; s.Workers = 0 },
		func(s *Spec) { s.Mode = ModeClosed; s.Workers = MaxWorkers + 1 },
		func(s *Spec) { s.ZipfS = -1 },
		func(s *Spec) { s.ZipfS = 21 },
		func(s *Spec) { s.BatchSize = MaxBatchSize + 1 },
		func(s *Spec) { s.FullFraction = 1.5 },
		func(s *Spec) { s.MutateOps = -1 },
		func(s *Spec) { s.MutateOps = MaxMutateOps + 1 },
		func(s *Spec) { s.Graphs = nil },
		func(s *Spec) { s.Graphs[0].Graph = "no/slash" },
		func(s *Spec) { s.Graphs[0].N = 0 },
		func(s *Spec) { s.Graphs[0].N = MaxVertices + 1 },
		func(s *Spec) { s.Graphs[0].Weight = -1 },
		func(s *Spec) { s.Graphs[0].Weight = 0; s.Graphs[1].Weight = 0 },
		func(s *Spec) { s.Endpoints[0].Name = "table" },
		func(s *Spec) { s.Solvers[1].Name = "no spaces" },
	}
	for i, mutate := range cases {
		spec := testSpec()
		mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: hostile spec validated", i)
		}
	}
}

// Recorded request lines that the spec could not have produced are rejected.
func TestReplayRejectsForeignRequests(t *testing.T) {
	spec := testSpec()
	spec.Requests = 1 // one recorded line per case: count check must not mask validation
	head, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`{"i":1,"at_us":0,"ep":"sssp","graph":"a","src":1}`,       // wrong index
		`{"i":0,"at_us":-5,"ep":"sssp","graph":"a","src":1}`,      // negative arrival
		`{"i":0,"at_us":0,"ep":"sssp","graph":"zz","src":1}`,      // graph not in mix
		`{"i":0,"at_us":0,"ep":"sssp","graph":"a","src":500}`,     // src out of range
		`{"i":0,"at_us":0,"ep":"dist","graph":"a","dst":900}`,     // dst out of range
		`{"i":0,"at_us":0,"ep":"table","graph":"a","src":1}`,      // unknown endpoint
		`{"i":0,"at_us":0,"ep":"batch","graph":"a"}`,              // empty batch
		`{"i":0,"at_us":0,"ep":"batch","graph":"a","srcs":[400]}`, // batch source beyond b... in range for a though
	} {
		in := string(head) + "\n" + line + "\n"
		_, err := ReadWorkload(strings.NewReader(in))
		if line == `{"i":0,"at_us":0,"ep":"batch","graph":"a","srcs":[400]}` {
			// 400 < 500: valid for graph a; this line is the control.
			if err != nil {
				t.Errorf("control line rejected: %v", err)
			}
			continue
		}
		if err == nil {
			t.Errorf("foreign request accepted: %s", line)
		}
	}
}

// Mutate requests carry deterministic insert-only deltas: every op is an
// in-range insert, slots within one delta are distinct, and the whole
// sequence regenerates identically. Read endpoints must never carry ops.
func TestGenerateMutateDeltas(t *testing.T) {
	spec := testSpec()
	spec.Requests = 80
	spec.MutateOps = 3
	spec.Endpoints = []Weighted{
		{Name: EndpointMutate, Weight: 1},
		{Name: EndpointSSSP, Weight: 1},
	}
	reqs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	mutates := 0
	for i := range reqs {
		r := &reqs[i]
		if r.Endpoint != EndpointMutate {
			if len(r.Ops) != 0 {
				t.Fatalf("request %d (%s) carries a delta", i, r.Endpoint)
			}
			continue
		}
		mutates++
		n, _ := spec.graphN(r.Graph)
		if len(r.Ops) != 3 {
			t.Fatalf("request %d delta has %d ops, want 3", i, len(r.Ops))
		}
		seen := map[[2]int32]bool{}
		for _, op := range r.Ops {
			if op.Op != mutate.OpInsert {
				t.Fatalf("request %d generated a %q op", i, op.Op)
			}
			if op.U < 0 || op.U >= n || op.V < 0 || op.V >= n {
				t.Fatalf("request %d op (%d,%d) out of range [0,%d)", i, op.U, op.V, n)
			}
			if op.W < 1 || op.W > 1024 {
				t.Fatalf("request %d op weight %d out of range [1,1024]", i, op.W)
			}
			u, v := op.U, op.V
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				t.Fatalf("request %d repeats slot (%d,%d) within one delta", i, u, v)
			}
			seen[[2]int32{u, v}] = true
		}
	}
	if mutates == 0 {
		t.Fatal("a half-weight mutate mix generated no mutate requests")
	}
	// Regeneration reproduces the deltas exactly.
	reqs2, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reqs, reqs2) {
		t.Fatal("mutate expansion is not deterministic")
	}
}

// MutateOps must not perturb the random stream unless the mutate endpoint is
// actually in the mix — old committed specs keep expanding byte-identically.
func TestMutateOpsInertWithoutMutateEndpoint(t *testing.T) {
	plain := testSpec()
	r1, err := plain.Generate()
	if err != nil {
		t.Fatal(err)
	}
	withOps := testSpec()
	withOps.MutateOps = 7
	r2, err := withOps.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("setting mutate_ops changed a mutate-free expansion")
	}
}

// Recorded mutate lines replay only when the spec could have generated their
// shape: insert-only, in-range, distinct slots, positive weight.
func TestReplayMutateLines(t *testing.T) {
	spec := testSpec()
	spec.Requests = 1
	head, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line string
		ok   bool
	}{
		{`{"i":0,"at_us":0,"ep":"mutate","graph":"a","ops":[{"op":"insert","u":1,"v":2,"w":3}]}`, true},
		{`{"i":0,"at_us":0,"ep":"mutate","graph":"a"}`, false},                                                                             // empty delta
		{`{"i":0,"at_us":0,"ep":"mutate","graph":"a","ops":[{"op":"set_weight","u":1,"v":2,"w":3}]}`, false},                               // not insert-only
		{`{"i":0,"at_us":0,"ep":"mutate","graph":"a","ops":[{"op":"insert","u":500,"v":2,"w":3}]}`, false},                                 // u out of range
		{`{"i":0,"at_us":0,"ep":"mutate","graph":"a","ops":[{"op":"insert","u":1,"v":2}]}`, false},                                         // zero weight
		{`{"i":0,"at_us":0,"ep":"mutate","graph":"a","ops":[{"op":"insert","u":1,"v":2,"w":3},{"op":"insert","u":2,"v":1,"w":4}]}`, false}, // duplicate slot
	}
	for _, tc := range cases {
		in := string(head) + "\n" + tc.line + "\n"
		_, err := ReadWorkload(strings.NewReader(in))
		if tc.ok && err != nil {
			t.Errorf("valid mutate line rejected: %v\n%s", err, tc.line)
		}
		if !tc.ok && err == nil {
			t.Errorf("foreign mutate line accepted: %s", tc.line)
		}
	}
}

// The runner shapes a mutate request as POST /graphs/{name}/mutate with the
// delta as the daemon's JSON batch body.
func TestMutateRequestShape(t *testing.T) {
	var mu sync.Mutex
	var paths []string
	var batches []mutate.Batch
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b mutate.Batch
		if err := json.NewDecoder(r.Body).Decode(&b); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		mu.Lock()
		paths = append(paths, r.Method+" "+r.URL.Path)
		batches = append(batches, b)
		mu.Unlock()
		w.Write([]byte(`{"status":"mutated"}`))
	}))
	t.Cleanup(ts.Close)

	spec := testSpec()
	spec.Mode = ModeClosed
	spec.Workers = 1 // sequential: recorded order matches request order
	spec.Requests = 10
	spec.MutateOps = 2
	spec.Endpoints = []Weighted{{Name: EndpointMutate, Weight: 1}}
	w := &Workload{Spec: spec}
	out, err := Run(context.Background(), w, Options{BaseURL: ts.URL, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(w, out)
	if rep.OK != 10 || rep.Errors != 0 {
		t.Fatalf("mutate run not clean: %+v", rep)
	}
	if len(paths) != 10 {
		t.Fatalf("server saw %d requests, want 10", len(paths))
	}
	for i := range w.Requests {
		want := "POST /graphs/" + w.Requests[i].Graph + "/mutate"
		if paths[i] != want {
			t.Fatalf("request %d hit %q, want %q", i, paths[i], want)
		}
		if !reflect.DeepEqual(batches[i].Ops, w.Requests[i].Ops) {
			t.Fatalf("request %d body ops %+v, want %+v", i, batches[i].Ops, w.Requests[i].Ops)
		}
	}
	if _, ok := rep.PerEndpoint[EndpointMutate]; !ok {
		t.Fatalf("report has no mutate endpoint breakdown: %+v", rep.PerEndpoint)
	}
}

// stubDaemon implements just enough of ssspd's surface for runner tests:
// query endpoints with a configurable stall and failure pattern, plus a
// /metrics document in the daemon's shape.
type stubDaemon struct {
	stall     time.Duration
	failEvery int64 // every Nth request answers 500 (0: never)
	requests  atomic.Int64
	sheds     atomic.Int64
}

func (s *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	query := func(w http.ResponseWriter, r *http.Request) {
		n := s.requests.Add(1)
		if s.stall > 0 {
			time.Sleep(s.stall)
		}
		if id := r.Header.Get("X-Trace-Id"); id != "" {
			w.Header().Set("X-Trace-Id", id)
		}
		if s.failEvery > 0 && n%s.failEvery == 0 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}
	mux.HandleFunc("/sssp", query)
	mux.HandleFunc("/dist", query)
	mux.HandleFunc("/batch", query)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"endpoints": map[string]any{
				"sssp": map[string]any{"requests": s.requests.Load(), "shed": s.sheds.Load()},
			},
			"engine":  map[string]any{"solves": s.requests.Load()},
			"catalog": map[string]any{"acquires": s.requests.Load()},
		})
	})
	return mux
}

func runStub(t *testing.T, spec Spec, stub *stubDaemon, opts Options) (*Workload, *Report) {
	t.Helper()
	ts := httptest.NewServer(stub.handler())
	t.Cleanup(ts.Close)
	opts.BaseURL = ts.URL
	if opts.Client == nil {
		opts.Client = ts.Client()
	}
	w := &Workload{Spec: spec}
	out, err := Run(context.Background(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, BuildReport(w, out)
}

func TestOpenLoopRunAndReport(t *testing.T) {
	spec := testSpec()
	spec.Requests = 120
	spec.Rate = 3000
	rep := func() *Report {
		_, r := runStub(t, spec, &stubDaemon{}, Options{TracePrefix: "t", ScrapeMetrics: true})
		return r
	}()
	if rep.Requests != 120 || rep.OK != 120 || rep.Errors != 0 {
		t.Fatalf("report counts: %+v", rep)
	}
	if rep.Mode != ModeOpen || rep.OfferedRate != 3000 {
		t.Fatalf("mode/rate: %+v", rep)
	}
	if rep.AchievedRate <= 0 || rep.WallSeconds <= 0 {
		t.Fatalf("rates: %+v", rep)
	}
	if rep.Latency.Count != 120 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("latency summary: %+v", rep.Latency)
	}
	if rep.Latency.MaxMs < rep.Latency.P999Ms {
		t.Fatalf("max below p999: %+v", rep.Latency)
	}
	if rep.StatusCounts["200"] != 120 {
		t.Fatalf("status counts: %+v", rep.StatusCounts)
	}
	if len(rep.PerEndpoint) == 0 {
		t.Fatal("no per-endpoint breakdown")
	}
	if rep.Metrics == nil || rep.Metrics.Endpoints["sssp"].Requests != 120 {
		t.Fatalf("metrics delta: %+v", rep.Metrics)
	}
}

func TestClosedLoopRun(t *testing.T) {
	spec := testSpec()
	spec.Mode = ModeClosed
	spec.Workers = 4
	spec.Requests = 80
	_, rep := runStub(t, spec, &stubDaemon{}, Options{})
	if rep.Requests != 80 || rep.OK != 80 {
		t.Fatalf("closed-loop counts: %+v", rep)
	}
	if rep.OfferedRate != 0 {
		t.Fatalf("closed loop must not claim an offered rate: %+v", rep)
	}
}

// Server failures land in the error count and the error-rate gate trips.
func TestErrorGateTrips(t *testing.T) {
	spec := testSpec()
	spec.Requests = 100
	spec.Rate = 5000
	zero := 0.0
	spec.SLO = &SLO{MaxErrorRate: &zero}
	_, rep := runStub(t, spec, &stubDaemon{failEvery: 10}, Options{})
	if rep.Errors == 0 {
		t.Fatal("failEvery server produced no errors")
	}
	if len(rep.Violations) == 0 {
		t.Fatalf("error gate did not trip: %+v", rep)
	}
}

// An artificial stall must trip the p99 gate — the mechanism that makes
// `make bench-serve` fail on a latency regression.
func TestStallTripsP99Gate(t *testing.T) {
	spec := testSpec()
	spec.Requests = 40
	spec.Rate = 2000
	spec.SLO = &SLO{P99Ms: 5}
	_, rep := runStub(t, spec, &stubDaemon{stall: 30 * time.Millisecond}, Options{})
	if rep.Latency.P99Ms < 25 {
		t.Fatalf("stall invisible in p99: %+v", rep.Latency)
	}
	found := false
	for _, v := range rep.Violations {
		if strings.Contains(v, "p99") {
			found = true
		}
	}
	if !found {
		t.Fatalf("p99 gate did not trip: violations %v", rep.Violations)
	}
	// The same run without the stall passes the same gate.
	spec2 := testSpec()
	spec2.Requests = 40
	spec2.Rate = 2000
	spec2.SLO = &SLO{P99Ms: 5000}
	_, rep2 := runStub(t, spec2, &stubDaemon{}, Options{})
	if len(rep2.Violations) != 0 {
		t.Fatalf("healthy run violated: %v", rep2.Violations)
	}
}

// Cancellation stops issuing; already-issued requests finish and the rest
// are marked, never silently dropped.
func TestRunCancellation(t *testing.T) {
	spec := testSpec()
	spec.Requests = 50
	spec.Rate = 100 // 0.5s expected duration: cancel mid-run
	stub := &stubDaemon{}
	ts := httptest.NewServer(stub.handler())
	t.Cleanup(ts.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	w := &Workload{Spec: spec}
	out, err := Run(ctx, w, Options{BaseURL: ts.URL, Client: ts.Client()})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 50 {
		t.Fatalf("results %d, want 50 (cancelled ones marked)", len(out.Results))
	}
	issued, cancelled := 0, 0
	for i := range out.Results {
		switch {
		case out.Results[i].Status == 200:
			issued++
		case out.Results[i].Err != "":
			cancelled++
		default:
			t.Fatalf("result %d neither answered nor marked: %+v", i, out.Results[i])
		}
	}
	if issued == 0 || cancelled == 0 {
		t.Fatalf("cancellation split issued=%d cancelled=%d, want both > 0", issued, cancelled)
	}
}

// Exact percentile math on a known distribution.
func TestSummarizeExact(t *testing.T) {
	ms := make([]float64, 1000)
	for i := range ms {
		ms[i] = float64(i + 1) // 1..1000
	}
	s := summarize(ms)
	if s.P50Ms != 500 || s.P95Ms != 950 || s.P99Ms != 990 || s.P999Ms != 999 || s.MaxMs != 1000 {
		t.Fatalf("percentiles: %+v", s)
	}
	if s.Count != 1000 || s.MeanMs != 500.5 {
		t.Fatalf("count/mean: %+v", s)
	}
	if got := summarize(nil); got.Count != 0 || got.P99Ms != 0 {
		t.Fatalf("empty summary: %+v", got)
	}
}
