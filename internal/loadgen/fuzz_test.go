package loadgen

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// FuzzWorkloadSpec feeds arbitrary bytes through the workload-file parser.
// Invariants: never panic, never accept a workload whose spec fails
// Validate, and anything accepted must round-trip — WriteTo then ReadWorkload
// yields the same workload — and (for small specs) expand without error.
func FuzzWorkloadSpec(f *testing.F) {
	for _, seed := range workloadFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		w, err := ReadWorkload(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := w.Spec.Validate(); err != nil {
			t.Fatalf("accepted workload fails validation: %v", err)
		}
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			t.Fatalf("accepted workload fails to re-serialize: %v", err)
		}
		w2, err := ReadWorkload(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-serialized workload rejected: %v", err)
		}
		if !reflect.DeepEqual(w.Spec, w2.Spec) || !reflect.DeepEqual(w.Requests, w2.Requests) {
			t.Fatal("workload changed through a write/read round trip")
		}
		// Expansion must succeed for any accepted spec; only run it when the
		// expansion is small enough to be cheap under the fuzzer.
		if w.Requests == nil && w.Spec.Requests <= 512 && maxMixN(&w.Spec) <= 4096 {
			if err := w.Expand(); err != nil {
				t.Fatalf("accepted header-only spec fails to expand: %v", err)
			}
			if len(w.Requests) != w.Spec.Requests {
				t.Fatalf("expanded %d requests, spec says %d", len(w.Requests), w.Spec.Requests)
			}
		}
	})
}

func maxMixN(s *Spec) int32 {
	var n int32
	for _, g := range s.Graphs {
		if g.N > n {
			n = g.N
		}
	}
	return n
}

// workloadFuzzSeeds builds the structured starting points: header-only specs
// across the generator's feature space, a full recording, and mangled
// variants. The committed corpus under testdata/fuzz/FuzzWorkloadSpec is
// generated from the same list (see TestSeedFuzzCorpus), so plain `go test`
// replays it even without -fuzz.
func workloadFuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(b []byte) { seeds = append(seeds, append([]byte(nil), b...)) }
	dump := func(w *Workload) []byte {
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}

	zero := 0.0
	specs := []Spec{
		{Name: "seed-open", Version: 1, Seed: 1, Requests: 40, Mode: ModeOpen, Rate: 500,
			ZipfS: 1.1, FullFraction: 0.25,
			Graphs:    []GraphMix{{Graph: "a", N: 64, Weight: 3}, {Graph: "b", N: 48, Weight: 1}},
			Endpoints: []Weighted{{Name: EndpointSSSP, Weight: 2}, {Name: EndpointDist, Weight: 1}},
			Solvers:   []Weighted{{Name: "", Weight: 1}, {Name: "dijkstra", Weight: 1}},
			SLO:       &SLO{P99Ms: 100, MaxErrorRate: &zero, MinAchievedFraction: 0.5}},
		{Name: "seed-closed", Version: 1, Seed: 2, Requests: 30, Mode: ModeClosed, Workers: 4,
			CacheHostile: true, BatchSize: 8,
			Graphs:    []GraphMix{{Graph: "g", N: 100, Weight: 1}},
			Endpoints: []Weighted{{Name: EndpointBatch, Weight: 1}}},
		{Name: "seed-mutate", Version: 1, Seed: 3, Requests: 24, Mode: ModeClosed, Workers: 1,
			MutateOps: 2,
			Graphs:    []GraphMix{{Graph: "m", N: 32, Weight: 1}},
			Endpoints: []Weighted{{Name: EndpointSSSP, Weight: 2}, {Name: EndpointMutate, Weight: 1}}},
	}
	for i := range specs {
		add(dump(&Workload{Spec: specs[i]}))
	}

	// A full recording: spec plus its own expansion.
	rec := &Workload{Spec: specs[0]}
	if err := rec.Expand(); err != nil {
		panic(err)
	}
	full := dump(rec)
	add(full)
	// A recording with mutate deltas, so the fuzzer starts from concrete
	// in-line ops too.
	recM := &Workload{Spec: specs[2]}
	if err := recM.Expand(); err != nil {
		panic(err)
	}
	add(dump(recM))
	add(full[:len(full)/2])                                                   // truncated mid-recording
	add(bytes.Replace(full, []byte(`"ep":"sssp"`), []byte(`"ep":"nope"`), 1)) // foreign endpoint
	header := dump(&Workload{Spec: specs[0]})
	add(append(header, []byte("{not json}\n")...)) // garbage request line
	add([]byte(`{"workload":"x","v":2}` + "\n"))   // wrong version
	add([]byte("\n\n"))
	add(nil)
	return seeds
}

// TestSeedFuzzCorpus regenerates the committed seed corpus. Run with
// LOADGEN_WRITE_CORPUS=1 after a format change; otherwise it only checks
// the corpus directory exists.
func TestSeedFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWorkloadSpec")
	if os.Getenv("LOADGEN_WRITE_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing (regenerate with LOADGEN_WRITE_CORPUS=1): %v", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range workloadFuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := fmt.Sprintf("seed-%02d", i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// The corpus replay must include at least one record that parses as a valid
// workload — guards against a corpus regenerated from a broken seed list.
func TestFuzzSeedsContainValidWorkloads(t *testing.T) {
	valid := 0
	for _, seed := range workloadFuzzSeeds() {
		if w, err := ReadWorkload(bytes.NewReader(seed)); err == nil {
			if !strings.HasPrefix(w.Spec.Name, "seed-") {
				t.Fatalf("unexpected workload name %q in seeds", w.Spec.Name)
			}
			valid++
		}
	}
	if valid < 3 {
		t.Fatalf("only %d of the fuzz seeds parse; the structured seeds are broken", valid)
	}
}
