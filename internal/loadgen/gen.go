package loadgen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mutate"
	"repro/internal/rng"
)

// picker samples from a weighted choice list by cumulative-weight binary
// search. Weights were validated to be finite, non-negative, positive-sum.
type picker struct {
	cum []float64
}

func newPicker(weights []float64) *picker {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}
	return &picker{cum: cum}
}

func (p *picker) pick(r *rng.Xoshiro256) int {
	total := p.cum[len(p.cum)-1]
	u := r.Float64() * total
	i := sort.SearchFloat64s(p.cum, math.Nextafter(u, math.Inf(1)))
	if i >= len(p.cum) { // u rounded up to the total: clamp to the last choice
		i = len(p.cum) - 1
	}
	return i
}

// zipfSampler draws ranks in [0, n) with P(k) ∝ 1/(k+1)^s via a precomputed
// cumulative table — exact, allocation-bounded by MaxVertices, and free of
// the s>1 restriction of rejection-inversion samplers. Rank k maps straight
// to vertex k: the hot set is the low vertex ids, which is what makes the
// skew visible in cache hit rates without any extra permutation state.
type zipfSampler struct {
	cum []float64
}

func newZipfSampler(n int32, s float64) *zipfSampler {
	cum := make([]float64, n)
	sum := 0.0
	for k := int32(0); k < n; k++ {
		sum += math.Exp(-s * math.Log(float64(k)+1))
		cum[k] = sum
	}
	return &zipfSampler{cum: cum}
}

func (z *zipfSampler) sample(r *rng.Xoshiro256) int32 {
	total := z.cum[len(z.cum)-1]
	u := r.Float64() * total
	i := sort.SearchFloat64s(z.cum, math.Nextafter(u, math.Inf(1)))
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return int32(i)
}

// strider enumerates [0, n) in a scrambled order with no repeats within n
// draws: the cache-hostile source model. The stride is chosen near the
// golden-ratio point and bumped until coprime with n, so consecutive draws
// are far apart in vertex-id space (no accidental locality) while still
// visiting every vertex exactly once per cycle.
type strider struct {
	n, stride, next int64
}

func newStrider(n int32, seed uint64) *strider {
	nn := int64(n)
	stride := int64(float64(nn)*0.6180339887498949) | 1
	if stride < 1 {
		stride = 1
	}
	for gcd(stride, nn) != 1 {
		stride += 2
		if stride >= nn {
			stride = 1 // n is a power of two or tiny; any odd works, 1 worst case
			break
		}
	}
	return &strider{n: nn, stride: stride, next: int64(seed % uint64(nn))}
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (s *strider) sample() int32 {
	v := s.next
	s.next = (s.next + s.stride) % s.n
	return int32(v)
}

// sourceModel is the per-graph source-vertex distribution: one of Zipf,
// uniform, or cache-hostile striding.
type sourceModel struct {
	n    int32
	zipf *zipfSampler
	str  *strider
}

func (m *sourceModel) sample(r *rng.Xoshiro256) int32 {
	switch {
	case m.str != nil:
		return m.str.sample()
	case m.zipf != nil:
		return m.zipf.sample(r)
	default:
		return int32(r.Uint64n(uint64(m.n)))
	}
}

// Expand generates the workload's concrete request sequence from its spec.
// Generation is deterministic: the same spec (same seed included) always
// yields the byte-identical sequence, on any platform — every random choice
// flows from one internal/rng stream seeded by Spec.Seed, and all float
// work is straight-line IEEE arithmetic. Calling Expand on a workload that
// already has requests (a recording) is a no-op.
func (w *Workload) Expand() error {
	if w.Requests != nil {
		return nil
	}
	reqs, err := w.Spec.Generate()
	if err != nil {
		return err
	}
	w.Requests = reqs
	return nil
}

// Generate expands the spec into its deterministic request sequence.
func (s *Spec) Generate() ([]Request, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(s.Seed)

	gw := make([]float64, len(s.Graphs))
	models := make([]*sourceModel, len(s.Graphs))
	for i, g := range s.Graphs {
		gw[i] = g.Weight
		m := &sourceModel{n: g.N}
		switch {
		case s.CacheHostile:
			// Derive the stride offset from the main stream so two graphs
			// never walk in lockstep.
			m.str = newStrider(g.N, r.Uint64())
		case s.ZipfS > 0:
			m.zipf = newZipfSampler(g.N, s.ZipfS)
		}
		models[i] = m
	}
	graphPick := newPicker(gw)

	endpoints := s.Endpoints
	if len(endpoints) == 0 {
		endpoints = []Weighted{{Name: EndpointSSSP, Weight: 1}}
	}
	ew := make([]float64, len(endpoints))
	for i, e := range endpoints {
		ew[i] = e.Weight
	}
	epPick := newPicker(ew)

	solvers := s.Solvers
	if len(solvers) == 0 {
		solvers = []Weighted{{Name: "", Weight: 1}}
	}
	sw := make([]float64, len(solvers))
	for i, sv := range solvers {
		sw[i] = sv.Weight
	}
	solverPick := newPicker(sw)

	batch := s.BatchSize
	if batch == 0 {
		batch = 16
	}
	mutOps := s.MutateOps
	if mutOps == 0 {
		mutOps = 4
	}

	reqs := make([]Request, s.Requests)
	at := 0.0 // seconds
	for i := range reqs {
		if s.Mode == ModeOpen {
			// Poisson arrivals: exponential inter-arrival with mean 1/rate.
			// 1-u keeps the argument in (0,1] so Log never sees zero.
			at += -math.Log(1-r.Float64()) / s.Rate
		}
		gi := graphPick.pick(r)
		model := models[gi]
		req := Request{
			Index:    i,
			AtUS:     int64(at * 1e6),
			Endpoint: endpoints[epPick.pick(r)].Name,
			Graph:    s.Graphs[gi].Graph,
			Solver:   solvers[solverPick.pick(r)].Name,
		}
		switch req.Endpoint {
		case EndpointSSSP:
			req.Src = model.sample(r)
			req.Full = s.FullFraction > 0 && r.Float64() < s.FullFraction
		case EndpointDist:
			req.Src = model.sample(r)
			req.Dst = int32(r.Uint64n(uint64(model.n))) // targets are uniform: skew is a source property
		case EndpointBatch:
			req.Srcs = make([]int32, batch)
			for j := range req.Srcs {
				req.Srcs[j] = model.sample(r)
			}
		case EndpointMutate:
			// Insert-only deltas: the generator never asks the server which
			// edges exist, and an insert is valid against any graph state.
			// One op per undirected slot, as the daemon's batch rules demand;
			// clamping to n keeps the rejection loop terminating on tiny
			// graphs (n vertices always have at least n free slots).
			k := mutOps
			if int64(k) > int64(model.n) {
				k = int(model.n)
			}
			req.Ops = make([]mutate.Op, k)
			used := make(map[[2]int32]bool, k)
			for j := range req.Ops {
				var u, v int32
				for {
					u = int32(r.Uint64n(uint64(model.n)))
					v = int32(r.Uint64n(uint64(model.n)))
					if u > v {
						u, v = v, u
					}
					if !used[[2]int32{u, v}] {
						break
					}
				}
				used[[2]int32{u, v}] = true
				req.Ops[j] = mutate.Op{Op: mutate.OpInsert, U: u, V: v, W: uint32(1 + r.Uint64n(1<<10))}
			}
		default:
			return nil, fmt.Errorf("loadgen: unreachable endpoint %q", req.Endpoint)
		}
		reqs[i] = req
	}
	return reqs, nil
}
