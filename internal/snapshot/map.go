package snapshot

import (
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"sync"
	"unsafe"

	"repro/internal/ch"
	"repro/internal/graph"
)

// ErrNotMappable reports that a snapshot cannot be served zero-copy — the
// file is the legacy v1 stream format, the platform has no mmap, or the host
// byte order rules out aliasing the little-endian file bytes. Callers detect
// it with errors.Is and fall back to the copy path (ReadFile).
var ErrNotMappable = errors.New("snapshot: not mappable")

var isLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Mapping owns the mmap'd bytes backing a graph and hierarchy returned by
// Map. The arrays alias the mapping, so it must stay open for as long as
// either is in use; Close unmaps (idempotent, nil-safe). In the serving
// stack a catalog generation owns its mapping and closes it only after the
// last in-flight query releases the generation.
type Mapping struct {
	data      []byte
	size      int64
	path      string
	closeOnce sync.Once
	closeErr  error
}

// Bytes returns the mapped length in bytes (the whole snapshot file).
func (m *Mapping) Bytes() int64 {
	if m == nil {
		return 0
	}
	return m.size
}

// Path returns the file the mapping was created from.
func (m *Mapping) Path() string {
	if m == nil {
		return ""
	}
	return m.path
}

// Close unmaps the file. The graph and hierarchy returned alongside the
// mapping must not be used afterwards.
func (m *Mapping) Close() error {
	if m == nil {
		return nil
	}
	m.closeOnce.Do(func() {
		if m.data != nil {
			m.closeErr = munmap(m.data)
			m.data = nil
		}
	})
	return m.closeErr
}

// vkey identifies a verified file: same device, inode, size, and mtime means
// the same bytes that previously passed full verification. WriteFile always
// renames a fresh temp file into place, so a legitimately replaced snapshot
// changes inode and misses this cache.
type vkey struct {
	dev, ino        uint64
	size, mtimeNano int64
}

var (
	verifiedMu sync.Mutex
	verified   = make(map[vkey]uint64) // vkey -> headerCRC seen at verification
)

const verifiedCap = 256

func verifiedLookup(k vkey) (uint64, bool) {
	verifiedMu.Lock()
	defer verifiedMu.Unlock()
	crc, ok := verified[k]
	return crc, ok
}

func verifiedStore(k vkey, crc uint64) {
	verifiedMu.Lock()
	defer verifiedMu.Unlock()
	if len(verified) >= verifiedCap {
		for old := range verified {
			delete(verified, old)
			break
		}
	}
	verified[k] = crc
}

// Map opens a v2 snapshot zero-copy: the file is mmap'd and the returned
// graph and hierarchy arrays alias the mapping directly, so load cost is a
// page mapping plus validation instead of a full decode-and-copy, and the
// arrays are backed by page cache rather than heap.
//
// The first Map of a given file pays full verification: header checksum and
// geometry, padding, both section CRCs, the O(n+m) CSR validation scan, and
// the hierarchy's structural checks. A successful verification is recorded
// against the file's identity (device, inode, size, mtime), so re-mapping
// the same unchanged file — the common case across catalog reloads and
// process restarts within one run — is O(1) validation on top of the mmap.
//
// Files the zero-copy path cannot serve (v1 snapshots, platforms without
// mmap, big-endian hosts) fail with an error matching ErrNotMappable;
// callers then fall back to ReadFile. On success the caller owns the
// returned Mapping and must keep it open while the graph or hierarchy is in
// use.
func Map(path string) (*graph.Graph, *ch.Hierarchy, *Mapping, error) {
	if !mmapSupported {
		return nil, nil, nil, fmt.Errorf("%w: platform has no mmap support", ErrNotMappable)
	}
	if !isLittleEndian {
		return nil, nil, nil, fmt.Errorf("%w: big-endian host cannot alias little-endian file bytes", ErrNotMappable)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	// The mapping survives the descriptor; close it on every path.
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, nil, err
	}
	size := fi.Size()
	if size < headerSize {
		return nil, nil, nil, fmt.Errorf("snapshot: %s: file too small to be a snapshot (%d bytes)", path, size)
	}
	if size != int64(int(size)) {
		return nil, nil, nil, fmt.Errorf("%w: file size %d exceeds address space", ErrNotMappable, size)
	}
	var hbuf [headerSize]byte
	if _, err := f.ReadAt(hbuf[:], 0); err != nil {
		return nil, nil, nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	version, _, err := decodePrefix(hbuf[:32])
	if err != nil {
		return nil, nil, nil, err
	}
	if version == 1 {
		return nil, nil, nil, fmt.Errorf("%w: %s is a v1 snapshot (rewrite it with gengraph -snap for zero-copy serving)",
			ErrNotMappable, path)
	}
	hd, err := decodeV2Header(hbuf[:])
	if err != nil {
		return nil, nil, nil, err
	}
	if err := hd.validateGeometry(size); err != nil {
		return nil, nil, nil, err
	}
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: mmap %s: %v", ErrNotMappable, path, err)
	}
	g, h, err := buildFromMapping(data, hd, fi)
	if err != nil {
		munmap(data)
		return nil, nil, nil, err
	}
	return g, h, &Mapping{data: data, size: size, path: path}, nil
}

func buildFromMapping(data []byte, hd *v2Header, fi os.FileInfo) (*graph.Graph, *ch.Hierarchy, error) {
	key, keyOK := fileID(fi)
	deep := true
	if keyOK {
		if crc, ok := verifiedLookup(key); ok && crc == hd.headerCRC {
			deep = false
		}
	}

	grph := data[hd.grphOff:hd.chieOff]
	chie := data[hd.chieOff:]
	if deep {
		for _, b := range data[headerSize:hd.grphOff] {
			if b != 0 {
				return nil, nil, errors.New("snapshot: nonzero byte in header padding (corrupted file)")
			}
		}
		if crc64.Checksum(grph, crcTab) != hd.fp.CRC {
			return nil, nil, errors.New("snapshot: graph section checksum mismatch (corrupted file)")
		}
		if crc64.Checksum(chie, crcTab) != hd.chieCRC {
			return nil, nil, errors.New("snapshot: hierarchy section checksum mismatch (corrupted file)")
		}
	}

	// Alias the CSR arrays straight out of the mapping. validateGeometry
	// proved the section holds exactly these lengths; grphOff is
	// page-aligned and each array's byte offset is a multiple of its element
	// size, so the views are correctly aligned.
	n := int(hd.fp.N)
	arcs := int(hd.arcs)
	offsets := i64view(grph, n+1)
	targets := i32view(grph[(n+1)*8:], arcs)
	weights := u32view(grph[(n+1)*8+arcs*4:], arcs)

	var g *graph.Graph
	var err error
	if deep {
		g, err = graph.FromCSRWithFingerprint(offsets, targets, weights, hd.fp)
		if err == nil && (g.MinWeight() != hd.minW || g.MaxWeight() != hd.maxW) {
			err = fmt.Errorf("header weight range [%d,%d] does not match arrays [%d,%d]",
				hd.minW, hd.maxW, g.MinWeight(), g.MaxWeight())
		}
	} else {
		g, err = graph.FromCSRTrusted(offsets, targets, weights, hd.fp, hd.minW, hd.maxW)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: %w", err)
	}

	h, err := decodeChieView(chie, g, deep)
	if err != nil {
		return nil, nil, err
	}
	if deep && keyOK {
		verifiedStore(key, hd.headerCRC)
	}
	return g, h, nil
}

// decodeChieView reconstructs the hierarchy with arrays aliasing the mapped
// payload (the zero-copy analogue of decodeChie).
func decodeChieView(payload []byte, g *graph.Graph, deep bool) (*ch.Hierarchy, error) {
	hd, err := parseChieHeader(payload, g)
	if err != nil {
		return nil, err
	}
	b := payload[chieHeaderSize:]
	nodes := hd.nodes
	cs := nodes - hd.leaves + 1
	h, err := ch.FromRaw(g, ch.Raw{
		Level:       i32view(b, nodes),
		Parent:      i32view(b[nodes*4:], nodes),
		VertexCount: i32view(b[nodes*8:], nodes),
		ChildStart:  i32view(b[nodes*12:], cs),
		Children:    i32view(b[nodes*12+cs*4:], hd.childLen),
		Root:        hd.root, MaxLevel: hd.maxLevel, VirtualRoot: hd.virtualRoot,
	}, deep)
	if err != nil {
		return nil, fmt.Errorf("snapshot: hierarchy section: %w", err)
	}
	return h, nil
}

// The view helpers reinterpret mapped bytes as typed slices. Callers
// guarantee b starts at an offset aligned for the element type and holds at
// least n elements; n == 0 returns nil because &b[0] on an empty tail slice
// would panic.

func i64view(b []byte, n int) []int64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

func i32view(b []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

func u32view(b []byte, n int) []uint32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}
