package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"repro/internal/ch"
	"repro/internal/graph"
)

var (
	magic    = [8]byte{'S', 'S', 'S', 'P', 'S', 'N', 'A', 'P'}
	tagGraph = [4]byte{'G', 'R', 'P', 'H'}
	tagCH    = [4]byte{'C', 'H', 'I', 'E'}
)

// Version is the current snapshot format version.
const Version = 1

var crcTab = crc64.MakeTable(crc64.ECMA)

// Write serialises g and its hierarchy h to w. h must have been built for g.
func Write(w io.Writer, g *graph.Graph, h *ch.Hierarchy) (int64, error) {
	if h.Graph() != g {
		return 0, errors.New("snapshot: hierarchy was built for a different graph value")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	fp := g.Fingerprint()
	for _, v := range []any{magic, uint32(Version), uint32(fp.N), uint64(fp.M), fp.CRC} {
		if err := put(v); err != nil {
			return written, fmt.Errorf("snapshot: write header: %w", err)
		}
	}

	// Graph section. The payload length is arithmetic over the array lengths,
	// so it is emitted before the payload without double-buffering.
	offsets, targets, weights := g.AdjOffsets(), g.Targets(), g.Weights()
	glen := 4 + 8 + int64(len(offsets))*8 + int64(len(targets))*4 + int64(len(weights))*4
	if err := writeSection(bw, &written, tagGraph, glen, func(sw io.Writer) error {
		for _, v := range []any{uint32(g.NumVertices()), uint64(len(targets)), offsets, targets, weights} {
			if err := binary.Write(sw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return written, fmt.Errorf("snapshot: write graph section: %w", err)
	}

	// CH section: ch.WriteTo's byte stream, measured first (its length is not
	// arithmetic from outside the ch package).
	var chBuf countingDiscard
	if _, err := h.WriteTo(&chBuf); err != nil {
		return written, fmt.Errorf("snapshot: measure hierarchy: %w", err)
	}
	if err := writeSection(bw, &written, tagCH, chBuf.n, func(sw io.Writer) error {
		_, err := h.WriteTo(sw)
		return err
	}); err != nil {
		return written, fmt.Errorf("snapshot: write ch section: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("snapshot: flush: %w", err)
	}
	return written, nil
}

// countingDiscard measures a serialisation without storing it.
type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// crcTee forwards writes while accumulating their CRC and length.
type crcTee struct {
	w   io.Writer
	crc uint64
	n   int64
}

func (t *crcTee) Write(p []byte) (int, error) {
	t.crc = crc64.Update(t.crc, crcTab, p)
	t.n += int64(len(p))
	return t.w.Write(p)
}

func writeSection(w io.Writer, written *int64, tag [4]byte, length int64, body func(io.Writer) error) error {
	if err := binary.Write(w, binary.LittleEndian, tag); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(length)); err != nil {
		return err
	}
	tee := &crcTee{w: w}
	if err := body(tee); err != nil {
		return err
	}
	if tee.n != length {
		return fmt.Errorf("section %s body wrote %d bytes, declared %d", tag, tee.n, length)
	}
	if err := binary.Write(w, binary.LittleEndian, tee.crc); err != nil {
		return err
	}
	*written += 4 + 8 + length + 8
	return nil
}

// ReadFingerprint decodes only the header, identifying the stored instance
// without loading the arrays.
func ReadFingerprint(r io.Reader) (graph.Fingerprint, error) {
	var fp graph.Fingerprint
	var m [8]byte
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return fp, fmt.Errorf("snapshot: read header: %w", err)
	}
	if m != magic {
		return fp, errors.New("snapshot: not a snapshot file (bad magic)")
	}
	var version, n uint32
	var fm, fcrc uint64
	for _, v := range []any{&version, &n, &fm, &fcrc} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return fp, fmt.Errorf("snapshot: read header: %w", err)
		}
	}
	if version != Version {
		return fp, fmt.Errorf("snapshot: unsupported version %d (want %d)", version, Version)
	}
	fp.N = int32(n)
	fp.M = int64(fm)
	fp.CRC = fcrc
	return fp, nil
}

// Read decodes a snapshot: header fingerprint, graph section, CH section.
// Both section checksums are verified before any structure is built, the
// header fingerprint's counts must match the decoded arrays, and the
// hierarchy is validated against the decoded graph (ch.ReadFrom compares the
// fingerprint it stores — CRC included — against the graph's, then checks
// structural invariants and sampled edge separation), so a corrupted or
// truncated file, or sections spliced from two different snapshots, is
// refused rather than served.
func Read(r io.Reader) (*graph.Graph, *ch.Hierarchy, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	fp, err := ReadFingerprint(br)
	if err != nil {
		return nil, nil, err
	}

	gpayload, err := readSection(br, tagGraph)
	if err != nil {
		return nil, nil, err
	}
	g, err := decodeGraph(gpayload, fp)
	if err != nil {
		return nil, nil, err
	}

	chPayload, err := readSection(br, tagCH)
	if err != nil {
		return nil, nil, err
	}
	h, err := ch.ReadFrom(bytes.NewReader(chPayload), g)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: ch section: %w", err)
	}
	return g, h, nil
}

// readSection reads one tagged, length-prefixed, checksummed payload.
func readSection(r io.Reader, want [4]byte) ([]byte, error) {
	var tag [4]byte
	if err := binary.Read(r, binary.LittleEndian, &tag); err != nil {
		return nil, fmt.Errorf("snapshot: read section tag: %w", err)
	}
	if tag != want {
		return nil, fmt.Errorf("snapshot: section %q where %q expected (truncated or reordered file)", tag, want)
	}
	var length uint64
	if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
		return nil, fmt.Errorf("snapshot: read section %s length: %w", want, err)
	}
	if length > 1<<40 {
		return nil, fmt.Errorf("snapshot: section %s declares implausible length %d", want, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("snapshot: section %s truncated: %w", want, err)
	}
	var stored uint64
	if err := binary.Read(r, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("snapshot: read section %s checksum: %w", want, err)
	}
	if sum := crc64.Checksum(payload, crcTab); sum != stored {
		return nil, fmt.Errorf("snapshot: section %s checksum mismatch (corrupted file)", want)
	}
	return payload, nil
}

// decodeGraph rebuilds the CSR graph from a verified graph-section payload.
// The header fingerprint is adopted rather than recomputed: the section CRC
// already proves the arrays are exactly what the writer hashed, the counts
// are cross-checked against the decoded arrays, and the CH section's own
// stored fingerprint re-verifies the CRC — so the second O(n+m) hashing pass
// a recompute would cost is pure redundancy on the load path.
func decodeGraph(payload []byte, fp graph.Fingerprint) (*graph.Graph, error) {
	r := bytes.NewReader(payload)
	var n uint32
	var arcs uint64
	for _, v := range []any{&n, &arcs} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("snapshot: graph section header: %w", err)
		}
	}
	wantLen := uint64(12) + (uint64(n)+1)*8 + arcs*4 + arcs*4
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("snapshot: graph section length %d does not match n=%d arcs=%d (want %d)",
			len(payload), n, arcs, wantLen)
	}
	offsets := make([]int64, n+1)
	targets := make([]int32, arcs)
	weights := make([]uint32, arcs)
	for _, v := range []any{offsets, targets, weights} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("snapshot: graph section arrays: %w", err)
		}
	}
	g, err := graph.FromCSRWithFingerprint(offsets, targets, weights, fp)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return g, nil
}

// WriteFile persists a snapshot atomically: serialise to a temp file in the
// destination directory, close it, then rename into place. A crash mid-write
// leaves the previous snapshot (or nothing), never a truncated artifact.
func WriteFile(path string, g *graph.Graph, h *ch.Hierarchy) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := Write(f, g, h); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// ReadFile loads a snapshot from disk.
func ReadFile(path string) (*graph.Graph, *ch.Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return Read(f)
}
