package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/ch"
	"repro/internal/graph"
)

var magic = [8]byte{'S', 'S', 'S', 'P', 'S', 'N', 'A', 'P'}

const (
	// Version is the snapshot format version Write emits. Read also accepts
	// the legacy v1 stream format (see legacy.go); only v2 files can be
	// served zero-copy via Map.
	Version = 2

	headerSize     = 96
	pageAlign      = 4096
	chieHeaderSize = 40

	// maxSectionLen is a plausibility cap on declared payload lengths. The
	// binding bound on allocation is the remaining file size when the total
	// is known, and chunked reading when it is not (readCapped).
	maxSectionLen = 1 << 40
)

var crcTab = crc64.MakeTable(crc64.ECMA)

// v2Header is the decoded fixed-size v2 file header. The graph section's
// payload is exactly the byte string the graph fingerprint hashes (offsets,
// targets, weights, little-endian), so fp.CRC doubles as that section's
// checksum and no separate field is stored for it.
type v2Header struct {
	fp         graph.Fingerprint
	arcs       uint64
	minW, maxW uint32
	grphOff    uint64
	grphLen    uint64
	chieOff    uint64
	chieLen    uint64
	chieCRC    uint64
	headerCRC  uint64
}

func (hd *v2Header) encode() [headerSize]byte {
	var b [headerSize]byte
	le := binary.LittleEndian
	copy(b[0:], magic[:])
	le.PutUint32(b[8:], Version)
	le.PutUint32(b[12:], uint32(hd.fp.N))
	le.PutUint64(b[16:], uint64(hd.fp.M))
	le.PutUint64(b[24:], hd.fp.CRC)
	le.PutUint64(b[32:], hd.arcs)
	le.PutUint32(b[40:], hd.minW)
	le.PutUint32(b[44:], hd.maxW)
	le.PutUint64(b[48:], hd.grphOff)
	le.PutUint64(b[56:], hd.grphLen)
	le.PutUint64(b[64:], hd.chieOff)
	le.PutUint64(b[72:], hd.chieLen)
	le.PutUint64(b[80:], hd.chieCRC)
	hd.headerCRC = crc64.Checksum(b[:88], crcTab)
	le.PutUint64(b[88:], hd.headerCRC)
	return b
}

func decodeV2Header(b []byte) (*v2Header, error) {
	le := binary.LittleEndian
	stored := le.Uint64(b[88:])
	if sum := crc64.Checksum(b[:88], crcTab); sum != stored {
		return nil, errors.New("snapshot: header checksum mismatch (corrupted file)")
	}
	version, fp, err := decodePrefix(b[:32])
	if err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("snapshot: v2 decoder handed version %d", version)
	}
	return &v2Header{
		fp:        fp,
		arcs:      le.Uint64(b[32:]),
		minW:      le.Uint32(b[40:]),
		maxW:      le.Uint32(b[44:]),
		grphOff:   le.Uint64(b[48:]),
		grphLen:   le.Uint64(b[56:]),
		chieOff:   le.Uint64(b[64:]),
		chieLen:   le.Uint64(b[72:]),
		chieCRC:   le.Uint64(b[80:]),
		headerCRC: stored,
	}, nil
}

// validateGeometry checks that the header's offsets and lengths are mutually
// consistent, implied by n and arcs, and (when the file size is known) match
// the file exactly. Every downstream slice bound derives from fields proved
// here, so a hostile header cannot drive a large allocation or a
// past-the-mapping read.
func (hd *v2Header) validateGeometry(fileSize int64) error {
	if hd.grphOff != pageAlign {
		return fmt.Errorf("snapshot: graph section offset %d, want %d", hd.grphOff, pageAlign)
	}
	if hd.arcs > maxSectionLen/8 {
		return fmt.Errorf("snapshot: header declares implausible arc count %d", hd.arcs)
	}
	wantGrph := (uint64(hd.fp.N)+1)*8 + hd.arcs*8
	if hd.grphLen != wantGrph {
		return fmt.Errorf("snapshot: graph section length %d does not match n=%d arcs=%d (want %d)",
			hd.grphLen, hd.fp.N, hd.arcs, wantGrph)
	}
	if hd.chieOff != hd.grphOff+hd.grphLen {
		return fmt.Errorf("snapshot: hierarchy section offset %d, want %d", hd.chieOff, hd.grphOff+hd.grphLen)
	}
	if hd.chieLen < chieHeaderSize || hd.chieLen > maxSectionLen {
		return fmt.Errorf("snapshot: implausible hierarchy section length %d", hd.chieLen)
	}
	if fileSize >= 0 && uint64(fileSize) != hd.chieOff+hd.chieLen {
		return fmt.Errorf("snapshot: file size %d does not match declared sections (want %d)",
			fileSize, hd.chieOff+hd.chieLen)
	}
	return nil
}

// Write serialises g and its hierarchy h to w in format v2. h must have been
// built for g. The output is deterministic for a given (g, h).
func Write(w io.Writer, g *graph.Graph, h *ch.Hierarchy) (int64, error) {
	if h.Graph() != g {
		return 0, errors.New("snapshot: hierarchy was built for a different graph value")
	}
	fp := g.Fingerprint()
	offsets, targets, weights := g.AdjOffsets(), g.Targets(), g.Weights()
	raw := h.Raw()

	hd := v2Header{
		fp:      fp,
		arcs:    uint64(len(targets)),
		minW:    g.MinWeight(),
		maxW:    g.MaxWeight(),
		grphOff: pageAlign,
	}
	hd.grphLen = uint64(len(offsets))*8 + uint64(len(targets))*4 + uint64(len(weights))*4
	hd.chieOff = hd.grphOff + hd.grphLen

	chie := encodeChie(raw, g.NumVertices(), fp)
	hd.chieLen = uint64(len(chie))
	hd.chieCRC = crc64.Checksum(chie, crcTab)
	hdr := hd.encode()

	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, 1<<20)
	fail := func(stage string, err error) (int64, error) {
		bw.Flush()
		return cw.n, fmt.Errorf("snapshot: write %s: %w", stage, err)
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail("header", err)
	}
	var zeros [pageAlign - headerSize]byte
	if _, err := bw.Write(zeros[:]); err != nil {
		return fail("padding", err)
	}
	for _, v := range []any{offsets, targets, weights} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fail("graph section", err)
		}
	}
	if _, err := bw.Write(chie); err != nil {
		return fail("ch section", err)
	}
	if err := bw.Flush(); err != nil {
		return cw.n, fmt.Errorf("snapshot: flush: %w", err)
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// encodeChie serialises the hierarchy's flat arrays behind a 40-byte header
// carrying the owning graph's fingerprint, which binds the section to its
// graph (a CH spliced in from another snapshot is refused on that mismatch).
func encodeChie(r ch.Raw, leaves int, fp graph.Fingerprint) []byte {
	nodes := len(r.Level)
	size := chieHeaderSize + 4*(3*nodes+len(r.ChildStart)+len(r.Children))
	b := make([]byte, 0, size)
	le := binary.LittleEndian
	b = le.AppendUint32(b, uint32(nodes))
	b = le.AppendUint32(b, uint32(leaves))
	b = le.AppendUint32(b, uint32(r.Root))
	b = le.AppendUint32(b, uint32(r.MaxLevel))
	var virt uint32
	if r.VirtualRoot {
		virt = 1
	}
	b = le.AppendUint32(b, virt)
	b = le.AppendUint32(b, uint32(len(r.Children)))
	b = le.AppendUint64(b, uint64(fp.M))
	b = le.AppendUint64(b, fp.CRC)
	for _, arr := range [][]int32{r.Level, r.Parent, r.VertexCount, r.ChildStart, r.Children} {
		for _, v := range arr {
			b = le.AppendUint32(b, uint32(v))
		}
	}
	return b
}

// decodePrefix parses the 32-byte header prefix shared by v1 and v2: magic,
// version, and the graph fingerprint. A vertex count above MaxInt32 is
// rejected here — narrowing it silently used to hand negative vertex counts
// to everything downstream.
func decodePrefix(b []byte) (uint32, graph.Fingerprint, error) {
	le := binary.LittleEndian
	var m [8]byte
	copy(m[:], b[:8])
	if m != magic {
		return 0, graph.Fingerprint{}, errors.New("snapshot: not a snapshot file (bad magic)")
	}
	version := le.Uint32(b[8:])
	if version != 1 && version != Version {
		return 0, graph.Fingerprint{}, fmt.Errorf("snapshot: unsupported version %d (want 1 or %d)", version, Version)
	}
	n := le.Uint32(b[12:])
	if n > math.MaxInt32 {
		return 0, graph.Fingerprint{}, fmt.Errorf("snapshot: header vertex count %d exceeds int32 (corrupt header)", n)
	}
	fm := le.Uint64(b[16:])
	if fm > math.MaxInt64 {
		return 0, graph.Fingerprint{}, fmt.Errorf("snapshot: header edge count %d exceeds int64 (corrupt header)", fm)
	}
	return version, graph.Fingerprint{N: int32(n), M: int64(fm), CRC: le.Uint64(b[24:])}, nil
}

// ReadFingerprint decodes only the header prefix, identifying the stored
// instance without loading the arrays. It accepts both format versions.
func ReadFingerprint(r io.Reader) (graph.Fingerprint, error) {
	var prefix [32]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return graph.Fingerprint{}, fmt.Errorf("snapshot: read header: %w", err)
	}
	_, fp, err := decodePrefix(prefix[:])
	return fp, err
}

// Read decodes a snapshot (either format version) into freshly allocated
// arrays. Both section checksums are verified before any structure is built,
// the header fingerprint's counts must match the decoded arrays, and the
// hierarchy is validated against the decoded graph — so a corrupted or
// truncated file, or sections spliced from two different snapshots, is
// refused rather than served. For mapped, zero-copy loading of v2 files use
// Map instead.
func Read(r io.Reader) (*graph.Graph, *ch.Hierarchy, error) {
	return readWithSize(r, -1)
}

func readWithSize(r io.Reader, fileSize int64) (*graph.Graph, *ch.Hierarchy, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var prefix [32]byte
	if _, err := io.ReadFull(br, prefix[:]); err != nil {
		return nil, nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	version, fp, err := decodePrefix(prefix[:])
	if err != nil {
		return nil, nil, err
	}
	if version == 1 {
		rem := int64(-1)
		if fileSize >= 0 {
			rem = fileSize - 32
		}
		return readV1(br, fp, rem)
	}
	return readV2(br, prefix, fileSize)
}

func readV2(br *bufio.Reader, prefix [32]byte, fileSize int64) (*graph.Graph, *ch.Hierarchy, error) {
	var hbuf [headerSize]byte
	copy(hbuf[:32], prefix[:])
	if _, err := io.ReadFull(br, hbuf[32:]); err != nil {
		return nil, nil, fmt.Errorf("snapshot: read v2 header: %w", err)
	}
	hd, err := decodeV2Header(hbuf[:])
	if err != nil {
		return nil, nil, err
	}
	if err := hd.validateGeometry(fileSize); err != nil {
		return nil, nil, err
	}
	if err := readZeros(br, int64(hd.grphOff)-headerSize); err != nil {
		return nil, nil, err
	}

	rem := int64(-1)
	if fileSize >= 0 {
		rem = fileSize - int64(hd.grphOff)
	}
	gp, err := readCapped(br, hd.grphLen, rem, "graph")
	if err != nil {
		return nil, nil, err
	}
	if crc64.Checksum(gp, crcTab) != hd.fp.CRC {
		return nil, nil, errors.New("snapshot: graph section checksum mismatch (corrupted file)")
	}
	g, err := decodeGraphV2(gp, hd)
	if err != nil {
		return nil, nil, err
	}

	if rem >= 0 {
		rem -= int64(hd.grphLen)
	}
	cp, err := readCapped(br, hd.chieLen, rem, "hierarchy")
	if err != nil {
		return nil, nil, err
	}
	if crc64.Checksum(cp, crcTab) != hd.chieCRC {
		return nil, nil, errors.New("snapshot: hierarchy section checksum mismatch (corrupted file)")
	}
	h, err := decodeChie(cp, g, true)
	if err != nil {
		return nil, nil, err
	}
	return g, h, nil
}

// decodeGraphV2 copies the verified graph payload into fresh CSR arrays. The
// payload length was already proved equal to (n+1)*8 + arcs*8 by
// validateGeometry, so the allocations below are bounded by bytes actually
// read from the file.
func decodeGraphV2(payload []byte, hd *v2Header) (*graph.Graph, error) {
	offsets := make([]int64, int(hd.fp.N)+1)
	targets := make([]int32, hd.arcs)
	weights := make([]uint32, hd.arcs)
	r := bytes.NewReader(payload)
	for _, v := range []any{offsets, targets, weights} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("snapshot: graph section arrays: %w", err)
		}
	}
	g, err := graph.FromCSRWithFingerprint(offsets, targets, weights, hd.fp)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if g.MinWeight() != hd.minW || g.MaxWeight() != hd.maxW {
		return nil, fmt.Errorf("snapshot: header weight range [%d,%d] does not match arrays [%d,%d]",
			hd.minW, hd.maxW, g.MinWeight(), g.MaxWeight())
	}
	return g, nil
}

// chieHeader is the decoded fixed part of the hierarchy section.
type chieHeader struct {
	nodes, leaves, childLen int
	root, maxLevel          int32
	virtualRoot             bool
}

// parseChieHeader decodes and validates the hierarchy section header against
// the already-decoded graph: the stored leaf count and graph fingerprint must
// match (refusing spliced sections), and the stored array lengths must
// account for the payload exactly.
func parseChieHeader(payload []byte, g *graph.Graph) (chieHeader, error) {
	var hd chieHeader
	if len(payload) < chieHeaderSize {
		return hd, fmt.Errorf("snapshot: hierarchy section too short (%d bytes)", len(payload))
	}
	le := binary.LittleEndian
	nodes := int64(le.Uint32(payload))
	leaves := int64(le.Uint32(payload[4:]))
	root := int32(le.Uint32(payload[8:]))
	maxLevel := int32(le.Uint32(payload[12:]))
	virt := le.Uint32(payload[16:])
	childLen := int64(le.Uint32(payload[20:]))
	fpM := le.Uint64(payload[24:])
	fpCRC := le.Uint64(payload[32:])

	if leaves != int64(g.NumVertices()) {
		return hd, fmt.Errorf("snapshot: hierarchy stores %d leaves, graph has %d vertices", leaves, g.NumVertices())
	}
	fp := g.Fingerprint()
	if fpM != uint64(fp.M) || fpCRC != fp.CRC {
		return hd, errors.New("snapshot: hierarchy section belongs to a different graph (fingerprint mismatch)")
	}
	if nodes < leaves {
		return hd, fmt.Errorf("snapshot: hierarchy stores %d nodes for %d leaves", nodes, leaves)
	}
	if virt > 1 {
		return hd, fmt.Errorf("snapshot: hierarchy virtual-root flag %d", virt)
	}
	want := int64(chieHeaderSize) + 4*(3*nodes+(nodes-leaves+1)+childLen)
	if want != int64(len(payload)) {
		return hd, fmt.Errorf("snapshot: hierarchy section length %d does not match nodes=%d children=%d (want %d)",
			len(payload), nodes, childLen, want)
	}
	return chieHeader{
		nodes: int(nodes), leaves: int(leaves), childLen: int(childLen),
		root: root, maxLevel: maxLevel, virtualRoot: virt == 1,
	}, nil
}

// decodeChie copies the verified hierarchy payload into fresh arrays and
// reconstructs the hierarchy over g.
func decodeChie(payload []byte, g *graph.Graph, deep bool) (*ch.Hierarchy, error) {
	hd, err := parseChieHeader(payload, g)
	if err != nil {
		return nil, err
	}
	level := make([]int32, hd.nodes)
	parent := make([]int32, hd.nodes)
	vertexCount := make([]int32, hd.nodes)
	childStart := make([]int32, hd.nodes-hd.leaves+1)
	children := make([]int32, hd.childLen)
	r := bytes.NewReader(payload[chieHeaderSize:])
	for _, v := range []any{level, parent, vertexCount, childStart, children} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("snapshot: hierarchy section arrays: %w", err)
		}
	}
	h, err := ch.FromRaw(g, ch.Raw{
		Level: level, Parent: parent, VertexCount: vertexCount,
		ChildStart: childStart, Children: children,
		Root: hd.root, MaxLevel: hd.maxLevel, VirtualRoot: hd.virtualRoot,
	}, deep)
	if err != nil {
		return nil, fmt.Errorf("snapshot: hierarchy section: %w", err)
	}
	return h, nil
}

// readZeros consumes n bytes that must all be zero — the header padding sits
// outside both section checksums, so it is verified explicitly.
func readZeros(r io.Reader, n int64) error {
	var buf [4096]byte
	for n > 0 {
		c := int64(len(buf))
		if c > n {
			c = n
		}
		if _, err := io.ReadFull(r, buf[:c]); err != nil {
			return fmt.Errorf("snapshot: header padding truncated: %w", err)
		}
		for _, b := range buf[:c] {
			if b != 0 {
				return errors.New("snapshot: nonzero byte in header padding (corrupted file)")
			}
		}
		n -= c
	}
	return nil
}

// readCapped reads a declared-length payload without trusting the
// declaration. When the remaining file size is known (remaining >= 0) a
// length exceeding it is refused before any allocation. When it is not — a
// plain io.Reader — the buffer grows in 4 MiB steps as bytes actually
// arrive, so a lying length on a short stream costs at most one spare chunk,
// not the declared gigabytes.
func readCapped(r io.Reader, length uint64, remaining int64, what string) ([]byte, error) {
	if length > maxSectionLen {
		return nil, fmt.Errorf("snapshot: %s section declares implausible length %d", what, length)
	}
	if remaining >= 0 {
		if length > uint64(remaining) {
			return nil, fmt.Errorf("snapshot: %s section declares %d bytes but only %d remain in file",
				what, length, remaining)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("snapshot: %s section truncated: %w", what, err)
		}
		return payload, nil
	}
	const chunk = 4 << 20
	var payload []byte
	for uint64(len(payload)) < length {
		c := length - uint64(len(payload))
		if c > chunk {
			c = chunk
		}
		start := len(payload)
		payload = append(payload, make([]byte, c)...)
		if _, err := io.ReadFull(r, payload[start:]); err != nil {
			return nil, fmt.Errorf("snapshot: %s section truncated: %w", what, err)
		}
	}
	return payload, nil
}

// syncFile flushes a snapshot to stable storage before it is renamed into
// place; a package variable so durability tests can inject failures.
var syncFile = func(f *os.File) error { return f.Sync() }

// WriteFile persists a snapshot atomically and durably: serialise to a temp
// file in the destination directory, fsync it, chmod to a normal read mode,
// rename into place, then fsync the directory so the rename itself survives
// a crash. A failure at any step leaves the previous snapshot (or nothing),
// never a truncated artifact.
func WriteFile(path string, g *graph.Graph, h *ch.Hierarchy) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := Write(f, g, h); err != nil {
		return fail(err)
	}
	if err := syncFile(f); err != nil {
		return fail(fmt.Errorf("snapshot: sync %s: %w", tmp, err))
	}
	// CreateTemp's 0600 would otherwise ship with the published snapshot,
	// hiding it from backup jobs or a daemon running under another uid.
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: sync directory %s: %w", dir, err)
	}
	return nil
}

// ReadFile loads a snapshot from disk into fresh arrays (the copy path; see
// Map for zero-copy). The file size bounds every declared section length, so
// a corrupt header cannot force a large allocation.
func ReadFile(path string) (*graph.Graph, *ch.Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	size := int64(-1)
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	return readWithSize(f, size)
}
