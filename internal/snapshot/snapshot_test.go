package snapshot

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
	"repro/internal/graph"
)

func buildPair(t *testing.T, g *graph.Graph) (*graph.Graph, *ch.Hierarchy) {
	t.Helper()
	return g, ch.BuildKruskal(g)
}

// A snapshot must survive write → read → write byte-identically: the decoded
// graph and hierarchy are exactly the stored arrays, with nothing re-derived
// differently on the way through.
func TestRoundTripByteIdentical(t *testing.T) {
	for _, g0 := range []*graph.Graph{
		gen.Random(500, 2000, 1<<10, gen.UWD, 7),
		gen.RMATGraph(256, 1024, 4, gen.UWD, 2),
		gen.Path(40, 9),
		func() *graph.Graph { // disconnected: exercises the virtual root
			b := graph.NewBuilder(6)
			b.MustAddEdge(0, 1, 3)
			b.MustAddEdge(2, 3, 5)
			return b.Build()
		}(),
		func() *graph.Graph { // self-loop stored once in CSR
			b := graph.NewBuilder(3)
			b.MustAddEdge(0, 1, 2)
			b.MustAddEdge(2, 2, 9)
			return b.Build()
		}(),
		graph.NewBuilder(1).Build(),
		graph.NewBuilder(0).Build(),
	} {
		g, h := buildPair(t, g0)
		var buf1 bytes.Buffer
		n, err := Write(&buf1, g, h)
		if err != nil {
			t.Fatalf("Write(%v): %v", g, err)
		}
		if int64(buf1.Len()) != n {
			t.Fatalf("Write reported %d bytes, wrote %d", n, buf1.Len())
		}
		g2, h2, err := Read(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("Read(%v): %v", g, err)
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("%v: graph fingerprint changed", g)
		}
		if h2.NumNodes() != h.NumNodes() || h2.Root() != h.Root() || h2.MaxLevel() != h.MaxLevel() {
			t.Fatalf("%v: hierarchy structure changed", g)
		}
		var buf2 bytes.Buffer
		if _, err := Write(&buf2, g2, h2); err != nil {
			t.Fatalf("re-Write(%v): %v", g, err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("%v: snapshot not byte-identical after round trip (%d vs %d bytes)",
				g, buf1.Len(), buf2.Len())
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	g, h := buildPair(t, gen.Random(300, 1200, 256, gen.UWD, 3))
	var buf bytes.Buffer
	if _, err := Write(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   flip(raw, 0),
		"bad version": flip(raw, 8),
		"header only": raw[:20],
	}
	// Truncate at many depths: inside the header, the graph section, the CH
	// section, and just shy of the final checksum.
	for _, cut := range []int{5, 14, 40, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		cases[filepath.Join("truncated", "cut")+string(rune('a'+cut%26))] = raw[:cut]
	}
	// Flip one byte in every region of the file: header fingerprint, graph
	// payload, graph checksum, CH payload, trailing checksum.
	for _, at := range []int{13, 25, 60, len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3, len(raw) - 3} {
		cases["flipped@"+string(rune('a'+at%26))] = flip(raw, at)
	}
	for name, data := range cases {
		if _, _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func flip(b []byte, at int) []byte {
	c := append([]byte(nil), b...)
	c[at] ^= 0x20
	return c
}

// Splicing the CH section of one snapshot onto the graph of another must be
// refused even though both sections are individually well-checksummed.
func TestReadRejectsSplicedSections(t *testing.T) {
	ga, ha := buildPair(t, gen.Random(200, 800, 256, gen.UWD, 1))
	gb, hb := buildPair(t, gen.Random(200, 800, 256, gen.UWD, 2))
	var a, b bytes.Buffer
	if _, err := Write(&a, ga, ha); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, gb, hb); err != nil {
		t.Fatal(err)
	}
	// Find the CH section start (the "CHIE" tag) in both files.
	ai := bytes.Index(a.Bytes(), []byte("CHIE"))
	bi := bytes.Index(b.Bytes(), []byte("CHIE"))
	if ai < 0 || bi < 0 {
		t.Fatal("CHIE tag not found")
	}
	spliced := append(append([]byte(nil), a.Bytes()[:ai]...), b.Bytes()[bi:]...)
	if _, _, err := Read(bytes.NewReader(spliced)); err == nil {
		t.Fatal("accepted a snapshot whose CH section belongs to a different graph")
	}
}

func TestWriteFileAtomicAndReadFile(t *testing.T) {
	g, h := buildPair(t, gen.Random(200, 800, 64, gen.UWD, 5))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	if err := WriteFile(path, g, h); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.snap" {
		t.Fatalf("snapshot dir should hold exactly g.snap, got %v", entries)
	}
	g2, h2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() || h2.NumNodes() != h.NumNodes() {
		t.Fatal("ReadFile returned a different instance")
	}
	// Unwritable destination: no stray temp files.
	if err := WriteFile(filepath.Join(dir, "missing", "x.snap"), g, h); err == nil {
		t.Fatal("expected error for unwritable directory")
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files: %v", entries)
	}
}

func TestReadFingerprintHeaderOnly(t *testing.T) {
	g, h := buildPair(t, gen.Random(100, 400, 16, gen.UWD, 9))
	var buf bytes.Buffer
	if _, err := Write(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	// Only the 32-byte header is needed.
	fp, err := ReadFingerprint(bytes.NewReader(buf.Bytes()[:32]))
	if err != nil {
		t.Fatal(err)
	}
	if fp != g.Fingerprint() {
		t.Fatalf("header fingerprint %v, want %v", fp, g.Fingerprint())
	}
}
