package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
	"repro/internal/graph"
)

func buildPair(t *testing.T, g *graph.Graph) (*graph.Graph, *ch.Hierarchy) {
	t.Helper()
	return g, ch.BuildKruskal(g)
}

// A snapshot must survive write → read → write byte-identically: the decoded
// graph and hierarchy are exactly the stored arrays, with nothing re-derived
// differently on the way through.
func TestRoundTripByteIdentical(t *testing.T) {
	for _, g0 := range []*graph.Graph{
		gen.Random(500, 2000, 1<<10, gen.UWD, 7),
		gen.RMATGraph(256, 1024, 4, gen.UWD, 2),
		gen.Path(40, 9),
		func() *graph.Graph { // disconnected: exercises the virtual root
			b := graph.NewBuilder(6)
			b.MustAddEdge(0, 1, 3)
			b.MustAddEdge(2, 3, 5)
			return b.Build()
		}(),
		func() *graph.Graph { // self-loop stored once in CSR
			b := graph.NewBuilder(3)
			b.MustAddEdge(0, 1, 2)
			b.MustAddEdge(2, 2, 9)
			return b.Build()
		}(),
		graph.NewBuilder(1).Build(),
		graph.NewBuilder(0).Build(),
	} {
		g, h := buildPair(t, g0)
		var buf1 bytes.Buffer
		n, err := Write(&buf1, g, h)
		if err != nil {
			t.Fatalf("Write(%v): %v", g, err)
		}
		if int64(buf1.Len()) != n {
			t.Fatalf("Write reported %d bytes, wrote %d", n, buf1.Len())
		}
		g2, h2, err := Read(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("Read(%v): %v", g, err)
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("%v: graph fingerprint changed", g)
		}
		if h2.NumNodes() != h.NumNodes() || h2.Root() != h.Root() || h2.MaxLevel() != h.MaxLevel() {
			t.Fatalf("%v: hierarchy structure changed", g)
		}
		var buf2 bytes.Buffer
		if _, err := Write(&buf2, g2, h2); err != nil {
			t.Fatalf("re-Write(%v): %v", g, err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("%v: snapshot not byte-identical after round trip (%d vs %d bytes)",
				g, buf1.Len(), buf2.Len())
		}
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	g, h := buildPair(t, gen.Random(300, 1200, 256, gen.UWD, 3))
	var buf bytes.Buffer
	if _, err := Write(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   flip(raw, 0),
		"bad version": flip(raw, 8),
		"header only": raw[:20],
	}
	// Truncate at many depths: inside the header, the graph section, the CH
	// section, and just shy of the final checksum.
	for _, cut := range []int{5, 14, 40, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		cases[filepath.Join("truncated", "cut")+string(rune('a'+cut%26))] = raw[:cut]
	}
	// Flip one byte in every region of the file: header fingerprint, graph
	// payload, graph checksum, CH payload, trailing checksum.
	for _, at := range []int{13, 25, 60, len(raw) / 3, len(raw) / 2, 2 * len(raw) / 3, len(raw) - 3} {
		cases["flipped@"+string(rune('a'+at%26))] = flip(raw, at)
	}
	for name, data := range cases {
		if _, _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func flip(b []byte, at int) []byte {
	c := append([]byte(nil), b...)
	c[at] ^= 0x20
	return c
}

// Splicing the CH section of one snapshot onto the graph of another must be
// refused even when the splicer fixes up every framing field — the hierarchy
// payload's stored graph fingerprint is what binds it to its graph.
func TestReadRejectsSplicedSections(t *testing.T) {
	ga, ha := buildPair(t, gen.Random(200, 800, 256, gen.UWD, 1))
	gb, hb := buildPair(t, gen.Random(200, 800, 256, gen.UWD, 2))
	var a, b bytes.Buffer
	if _, err := Write(&a, ga, ha); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(&b, gb, hb); err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	chieOffA := le.Uint64(a.Bytes()[64:])
	chieOffB := le.Uint64(b.Bytes()[64:])
	spliced := append([]byte(nil), a.Bytes()[:chieOffA]...)
	spliced = append(spliced, b.Bytes()[chieOffB:]...)
	// A consistent forgery would also rewrite the framing: copy B's chieLen
	// and chieCRC into A's header and recompute the header checksum.
	copy(spliced[72:80], b.Bytes()[72:80])
	copy(spliced[80:88], b.Bytes()[80:88])
	le.PutUint64(spliced[88:], crc64.Checksum(spliced[:88], crcTab))
	if _, _, err := Read(bytes.NewReader(spliced)); err == nil {
		t.Fatal("accepted a snapshot whose CH section belongs to a different graph")
	}

	// Same attack against the v1 stream framing.
	a.Reset()
	b.Reset()
	if _, err := WriteV1(&a, ga, ha); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteV1(&b, gb, hb); err != nil {
		t.Fatal(err)
	}
	ai := bytes.Index(a.Bytes(), []byte("CHIE"))
	bi := bytes.Index(b.Bytes(), []byte("CHIE"))
	if ai < 0 || bi < 0 {
		t.Fatal("CHIE tag not found")
	}
	splicedV1 := append(append([]byte(nil), a.Bytes()[:ai]...), b.Bytes()[bi:]...)
	if _, _, err := Read(bytes.NewReader(splicedV1)); err == nil {
		t.Fatal("accepted a v1 snapshot whose CH section belongs to a different graph")
	}
}

// v1 files written by earlier releases must keep loading through Read, with
// the identical instance coming back.
func TestReadAcceptsLegacyV1(t *testing.T) {
	g, h := buildPair(t, gen.Random(300, 1200, 256, gen.UWD, 11))
	var buf bytes.Buffer
	if _, err := WriteV1(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	g2, h2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Read(v1): %v", err)
	}
	if g2.Fingerprint() != g.Fingerprint() || h2.NumNodes() != h.NumNodes() {
		t.Fatal("v1 round trip changed the instance")
	}
	// And via ReadFile, which bounds sections by the real file size.
	path := filepath.Join(t.TempDir(), "v1.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err != nil {
		t.Fatalf("ReadFile(v1): %v", err)
	}
}

// Regression: a header vertex count above MaxInt32 used to be narrowed to a
// negative int32 and handed downstream; it must be rejected by every entry
// point, with the header otherwise internally consistent so the rejection is
// provably the overflow check and not a checksum side effect.
func TestRejectsVertexCountOverflow(t *testing.T) {
	g, h := buildPair(t, gen.Random(100, 400, 16, gen.UWD, 9))
	var buf bytes.Buffer
	if _, err := Write(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	le := binary.LittleEndian
	le.PutUint32(raw[12:], 1<<31) // fpN = MaxInt32+1
	le.PutUint64(raw[88:], crc64.Checksum(raw[:88], crcTab))

	if _, err := ReadFingerprint(bytes.NewReader(raw[:32])); err == nil {
		t.Error("ReadFingerprint accepted n > MaxInt32")
	} else if !strings.Contains(err.Error(), "int32") {
		t.Errorf("ReadFingerprint error %q does not name the overflow", err)
	}
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("Read accepted n > MaxInt32")
	}
	path := filepath.Join(t.TempDir(), "overflow.snap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Map(path); err == nil {
		t.Error("Map accepted n > MaxInt32")
	}

	// The same corruption in a v1 header.
	buf.Reset()
	if _, err := WriteV1(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	rawV1 := append([]byte(nil), buf.Bytes()...)
	le.PutUint32(rawV1[12:], 1<<31)
	if _, err := ReadFingerprint(bytes.NewReader(rawV1[:32])); err == nil {
		t.Error("ReadFingerprint accepted v1 n > MaxInt32")
	}
	if _, _, err := Read(bytes.NewReader(rawV1)); err == nil {
		t.Error("Read accepted v1 n > MaxInt32")
	}
}

// Regression: a corrupt v1 section length used to drive a pre-checksum
// allocation of the declared size (up to 1 TiB). With the file size known the
// declaration is refused outright; from a plain reader the read is chunked,
// so a short stream bounds the allocation regardless of the lie.
func TestV1RejectsInflatedSectionLength(t *testing.T) {
	g, h := buildPair(t, gen.Random(200, 800, 64, gen.UWD, 4))
	var buf bytes.Buffer
	if _, err := WriteV1(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	// The GRPH section header starts right after the 32-byte file header:
	// tag at [32,36), declared length at [36,44).
	if string(raw[32:36]) != "GRPH" {
		t.Fatalf("GRPH tag not at offset 32: %q", raw[32:36])
	}
	binary.LittleEndian.PutUint64(raw[36:], 512<<30) // declare 512 GiB

	path := filepath.Join(t.TempDir(), "inflated.snap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a section longer than the file")
	} else if !strings.Contains(err.Error(), "remain") {
		t.Errorf("ReadFile error %q should reject the length against the file size", err)
	}
	if _, _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Error("Read accepted a section longer than the stream")
	}

	// Truncation mid-section must also fail cleanly at both entry points.
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := os.WriteFile(path, trunc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err == nil {
		t.Error("ReadFile accepted a truncated v1 file")
	}
	if _, _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("Read accepted a truncated v1 stream")
	}
}

func TestWriteFileAtomicAndReadFile(t *testing.T) {
	g, h := buildPair(t, gen.Random(200, 800, 64, gen.UWD, 5))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	if err := WriteFile(path, g, h); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.snap" {
		t.Fatalf("snapshot dir should hold exactly g.snap, got %v", entries)
	}
	g2, h2, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() || h2.NumNodes() != h.NumNodes() {
		t.Fatal("ReadFile returned a different instance")
	}
	// The published snapshot must be world-readable, not CreateTemp's 0600.
	if fi, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else if perm := fi.Mode().Perm(); perm != 0o644 {
		t.Fatalf("snapshot mode %o, want 644", perm)
	}
	// Unwritable destination: no stray temp files.
	if err := WriteFile(filepath.Join(dir, "missing", "x.snap"), g, h); err == nil {
		t.Fatal("expected error for unwritable directory")
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files: %v", entries)
	}
}

// A snapshot whose bytes never reached stable storage must not be renamed
// into place: when fsync fails, WriteFile reports the failure and leaves
// neither the destination nor a stray temp file behind.
func TestWriteFileSyncFailure(t *testing.T) {
	g, h := buildPair(t, gen.Random(100, 400, 64, gen.UWD, 6))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")

	orig := syncFile
	syncFile = func(f *os.File) error { return errors.New("injected fsync failure") }
	defer func() { syncFile = orig }()

	err := WriteFile(path, g, h)
	if err == nil || !strings.Contains(err.Error(), "injected fsync failure") {
		t.Fatalf("WriteFile = %v, want the injected fsync failure", err)
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Fatalf("failed write left files behind: %v", entries)
	}

	syncFile = orig
	if err := WriteFile(path, g, h); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadFingerprintHeaderOnly(t *testing.T) {
	g, h := buildPair(t, gen.Random(100, 400, 16, gen.UWD, 9))
	var buf bytes.Buffer
	if _, err := Write(&buf, g, h); err != nil {
		t.Fatal(err)
	}
	// Only the 32-byte header is needed.
	fp, err := ReadFingerprint(bytes.NewReader(buf.Bytes()[:32]))
	if err != nil {
		t.Fatal(err)
	}
	if fp != g.Fingerprint() {
		t.Fatalf("header fingerprint %v, want %v", fp, g.Fingerprint())
	}
}
