package snapshot

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
)

// FuzzSnapshotRead feeds arbitrary bytes through both decode paths — the
// copy reader and the mmap reader. The invariants under fuzzing: never
// panic, never allocate from a declared length beyond the bytes actually
// present (the chunked reads in readCapped), and anything accepted must come
// back as a coherent instance that re-serializes.
func FuzzSnapshotRead(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		g, h, err := Read(bytes.NewReader(data))
		if err == nil {
			if g == nil || h == nil || h.Graph() != g {
				t.Fatal("Read returned an incoherent instance without error")
			}
			var buf bytes.Buffer
			if _, err := Write(&buf, g, h); err != nil {
				t.Fatalf("accepted instance fails to re-serialize: %v", err)
			}
		}
		if !mmapSupported || !isLittleEndian {
			return
		}
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mg, mh, m, err := Map(path)
		if err == nil {
			if mg == nil || mh == nil || mh.Graph() != mg {
				t.Fatal("Map returned an incoherent instance without error")
			}
			_ = mg.Fingerprint()
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// fuzzSeeds builds the structured starting points: valid v2 and v1 files,
// their truncations, and degenerate prefixes. The committed corpus under
// testdata/fuzz/FuzzSnapshotRead is generated from the same list (see
// TestSeedFuzzCorpus), so plain `go test` replays it even without -fuzz.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	add := func(b []byte) { seeds = append(seeds, append([]byte(nil), b...)) }
	for _, s := range []uint64{1, 2} {
		g := gen.Random(60, 200, 32, gen.UWD, s)
		h := ch.BuildKruskal(g)
		var v2, v1 bytes.Buffer
		if _, err := Write(&v2, g, h); err != nil {
			panic(err)
		}
		if _, err := WriteV1(&v1, g, h); err != nil {
			panic(err)
		}
		add(v2.Bytes())
		add(v1.Bytes())
		add(v2.Bytes()[:headerSize])
		add(v2.Bytes()[:v2.Len()/2])
		add(v1.Bytes()[:v1.Len()/2])
	}
	add(nil)
	add(magic[:])
	return seeds
}

// TestSeedFuzzCorpus regenerates the committed seed corpus. Run with
// SNAPSHOT_WRITE_CORPUS=1 after a format change; otherwise it only checks
// the corpus directory exists.
func TestSeedFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotRead")
	if os.Getenv("SNAPSHOT_WRITE_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing (regenerate with SNAPSHOT_WRITE_CORPUS=1): %v", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := fmt.Sprintf("seed-%02d", i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
