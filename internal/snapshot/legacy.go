package snapshot

// Format v1 support. v1 is a tagged stream: the 32-byte header prefix shared
// with v2, then two sections each framed as tag[4] + length u64 + payload +
// crc u64. It cannot be mmap'd (arrays are not aligned or laid out in their
// in-memory form), so Read decodes it through the copy path and Map refuses
// it with ErrNotMappable. WriteV1 is retained so migration tests and the
// catalog benchmark can still produce v1 files; everything else in the
// serving stack writes v2.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"

	"repro/internal/ch"
	"repro/internal/graph"
)

var (
	tagGraph = [4]byte{'G', 'R', 'P', 'H'}
	tagCH    = [4]byte{'C', 'H', 'I', 'E'}
)

// WriteV1 serialises g and h in the legacy v1 stream format.
func WriteV1(w io.Writer, g *graph.Graph, h *ch.Hierarchy) (int64, error) {
	if h.Graph() != g {
		return 0, errors.New("snapshot: hierarchy was built for a different graph value")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	var written int64
	put := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	fp := g.Fingerprint()
	for _, v := range []any{magic, uint32(1), uint32(fp.N), uint64(fp.M), fp.CRC} {
		if err := put(v); err != nil {
			return written, fmt.Errorf("snapshot: write header: %w", err)
		}
	}

	// Graph section. The payload length is arithmetic over the array lengths,
	// so it is emitted before the payload without double-buffering.
	offsets, targets, weights := g.AdjOffsets(), g.Targets(), g.Weights()
	glen := 4 + 8 + int64(len(offsets))*8 + int64(len(targets))*4 + int64(len(weights))*4
	if err := writeSectionV1(bw, &written, tagGraph, glen, func(sw io.Writer) error {
		for _, v := range []any{uint32(g.NumVertices()), uint64(len(targets)), offsets, targets, weights} {
			if err := binary.Write(sw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return written, fmt.Errorf("snapshot: write graph section: %w", err)
	}

	// CH section: ch.WriteTo's byte stream, measured first (its length is not
	// arithmetic from outside the ch package).
	var chBuf countingDiscard
	if _, err := h.WriteTo(&chBuf); err != nil {
		return written, fmt.Errorf("snapshot: measure hierarchy: %w", err)
	}
	if err := writeSectionV1(bw, &written, tagCH, chBuf.n, func(sw io.Writer) error {
		_, err := h.WriteTo(sw)
		return err
	}); err != nil {
		return written, fmt.Errorf("snapshot: write ch section: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return written, fmt.Errorf("snapshot: flush: %w", err)
	}
	return written, nil
}

// countingDiscard measures a serialisation without storing it.
type countingDiscard struct{ n int64 }

func (c *countingDiscard) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// crcTee forwards writes while accumulating their CRC and length.
type crcTee struct {
	w   io.Writer
	crc uint64
	n   int64
}

func (t *crcTee) Write(p []byte) (int, error) {
	t.crc = crc64.Update(t.crc, crcTab, p)
	t.n += int64(len(p))
	return t.w.Write(p)
}

func writeSectionV1(w io.Writer, written *int64, tag [4]byte, length int64, body func(io.Writer) error) error {
	if err := binary.Write(w, binary.LittleEndian, tag); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(length)); err != nil {
		return err
	}
	tee := &crcTee{w: w}
	if err := body(tee); err != nil {
		return err
	}
	if tee.n != length {
		return fmt.Errorf("section %s body wrote %d bytes, declared %d", tag, tee.n, length)
	}
	if err := binary.Write(w, binary.LittleEndian, tee.crc); err != nil {
		return err
	}
	*written += 4 + 8 + length + 8
	return nil
}

// readV1 decodes the two tagged sections following an already-parsed header.
// remaining is the file size minus the header when known, -1 otherwise; it
// bounds every declared section length (readCapped), closing the old hole
// where a corrupt length drove a giant pre-checksum allocation.
func readV1(r io.Reader, fp graph.Fingerprint, remaining int64) (*graph.Graph, *ch.Hierarchy, error) {
	gpayload, remaining, err := readSectionV1(r, tagGraph, remaining)
	if err != nil {
		return nil, nil, err
	}
	g, err := decodeGraphV1(gpayload, fp)
	if err != nil {
		return nil, nil, err
	}
	chPayload, _, err := readSectionV1(r, tagCH, remaining)
	if err != nil {
		return nil, nil, err
	}
	h, err := ch.ReadFrom(bytes.NewReader(chPayload), g)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot: ch section: %w", err)
	}
	return g, h, nil
}

// readSectionV1 reads one tagged, length-prefixed, checksummed payload and
// returns the remaining byte budget after it.
func readSectionV1(r io.Reader, want [4]byte, remaining int64) ([]byte, int64, error) {
	name := string(want[:])
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, remaining, fmt.Errorf("snapshot: read section %s header: %w", name, err)
	}
	var tag [4]byte
	copy(tag[:], hdr[:4])
	if tag != want {
		return nil, remaining, fmt.Errorf("snapshot: section %q where %q expected (truncated or reordered file)",
			tag[:], name)
	}
	length := binary.LittleEndian.Uint64(hdr[4:])
	budget := int64(-1)
	if remaining >= 0 {
		// Charge the section framing (12-byte header + 8-byte checksum)
		// before the payload.
		budget = remaining - 12 - 8
		if budget < 0 {
			return nil, remaining, fmt.Errorf("snapshot: section %s truncated", name)
		}
	}
	payload, err := readCapped(r, length, budget, name)
	if err != nil {
		return nil, remaining, err
	}
	var crcBuf [8]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, remaining, fmt.Errorf("snapshot: read section %s checksum: %w", name, err)
	}
	if crc64.Checksum(payload, crcTab) != binary.LittleEndian.Uint64(crcBuf[:]) {
		return nil, remaining, fmt.Errorf("snapshot: section %s checksum mismatch (corrupted file)", name)
	}
	if remaining >= 0 {
		remaining -= 12 + int64(length) + 8
	}
	return payload, remaining, nil
}

// decodeGraphV1 rebuilds the CSR graph from a verified v1 graph-section
// payload. The header fingerprint is adopted rather than recomputed: the
// section CRC already proves the arrays are exactly what the writer hashed,
// the counts are cross-checked against the decoded arrays, and the CH
// section's own stored fingerprint re-verifies the CRC — so the second
// O(n+m) hashing pass a recompute would cost is pure redundancy on the load
// path.
func decodeGraphV1(payload []byte, fp graph.Fingerprint) (*graph.Graph, error) {
	r := bytes.NewReader(payload)
	var n uint32
	var arcs uint64
	for _, v := range []any{&n, &arcs} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("snapshot: graph section header: %w", err)
		}
	}
	wantLen := uint64(12) + (uint64(n)+1)*8 + arcs*4 + arcs*4
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("snapshot: graph section length %d does not match n=%d arcs=%d (want %d)",
			len(payload), n, arcs, wantLen)
	}
	offsets := make([]int64, n+1)
	targets := make([]int32, arcs)
	weights := make([]uint32, arcs)
	for _, v := range []any{offsets, targets, weights} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("snapshot: graph section arrays: %w", err)
		}
	}
	g, err := graph.FromCSRWithFingerprint(offsets, targets, weights, fp)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return g, nil
}
