package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
	"repro/internal/graph"
)

func requireMmap(t *testing.T) {
	t.Helper()
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	if !isLittleEndian {
		t.Skip("big-endian host cannot alias snapshot bytes")
	}
}

func writeSnap(t *testing.T, dir, name string, g *graph.Graph, h *ch.Hierarchy) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := WriteFile(path, g, h); err != nil {
		t.Fatal(err)
	}
	return path
}

// A mapped snapshot must be indistinguishable from a copy-read one: same
// graph arrays, same hierarchy structure, identical bytes when re-written.
func TestMapRoundTrip(t *testing.T) {
	requireMmap(t)
	for i, g0 := range []*graph.Graph{
		gen.Random(500, 2000, 1<<10, gen.UWD, 7),
		gen.Path(40, 9),
		func() *graph.Graph { // disconnected: exercises the virtual root
			b := graph.NewBuilder(6)
			b.MustAddEdge(0, 1, 3)
			b.MustAddEdge(2, 3, 5)
			return b.Build()
		}(),
		graph.NewBuilder(1).Build(),
		graph.NewBuilder(0).Build(),
	} {
		g, h := buildPair(t, g0)
		path := writeSnap(t, t.TempDir(), "g.snap", g, h)

		mg, mh, m, err := Map(path)
		if err != nil {
			t.Fatalf("case %d: Map: %v", i, err)
		}
		if mg.Fingerprint() != g.Fingerprint() {
			t.Fatalf("case %d: mapped graph fingerprint changed", i)
		}
		if mg.NumVertices() != g.NumVertices() || mg.NumEdges() != g.NumEdges() ||
			mg.MinWeight() != g.MinWeight() || mg.MaxWeight() != g.MaxWeight() {
			t.Fatalf("case %d: mapped graph shape changed", i)
		}
		if mh.NumNodes() != h.NumNodes() || mh.Root() != h.Root() ||
			mh.MaxLevel() != h.MaxLevel() || mh.HasVirtualRoot() != h.HasVirtualRoot() {
			t.Fatalf("case %d: mapped hierarchy structure changed", i)
		}
		mr, hr := mh.Raw(), h.Raw()
		for j := range hr.Level {
			if mr.Level[j] != hr.Level[j] || mr.Parent[j] != hr.Parent[j] {
				t.Fatalf("case %d: mapped hierarchy arrays differ at node %d", i, j)
			}
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if m.Bytes() != fi.Size() {
			t.Fatalf("case %d: Mapping.Bytes() = %d, file is %d", i, m.Bytes(), fi.Size())
		}

		// Second Map of the unchanged file takes the memoized shallow path
		// and must return the same instance; double Close is harmless.
		mg2, _, m2, err := Map(path)
		if err != nil {
			t.Fatalf("case %d: re-Map: %v", i, err)
		}
		if mg2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("case %d: re-mapped graph fingerprint changed", i)
		}
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatalf("case %d: second Close: %v", i, err)
		}
	}
}

func TestMapRefusesV1(t *testing.T) {
	requireMmap(t)
	g, h := buildPair(t, gen.Random(100, 400, 16, gen.UWD, 3))
	path := filepath.Join(t.TempDir(), "v1.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteV1(f, g, h); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Map(path)
	if !errors.Is(err, ErrNotMappable) {
		t.Fatalf("Map(v1) = %v, want ErrNotMappable", err)
	}
	// The fallback the catalog takes must work on the same file.
	if _, _, err := ReadFile(path); err != nil {
		t.Fatalf("ReadFile(v1) fallback: %v", err)
	}
}

// First-Map verification must reject corruption anywhere in the file. Each
// corrupt copy is a fresh file (new inode), so the verification registry
// never short-circuits these checks.
func TestMapRejectsCorruption(t *testing.T) {
	requireMmap(t)
	g, h := buildPair(t, gen.Random(300, 1200, 256, gen.UWD, 3))
	dir := t.TempDir()
	path := writeSnap(t, dir, "g.snap", g, h)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]int{
		"header fpN":     13,
		"header fpCRC":   25,
		"header grphLen": 60,
		"padding":        headerSize + 10,
		"graph payload":  pageAlign + 100,
		"chie payload":   len(raw) - 3,
	}
	i := 0
	for name, at := range cases {
		i++
		p := filepath.Join(dir, "corrupt"+string(rune('a'+i))+".snap")
		if err := os.WriteFile(p, flip(raw, at), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := Map(p); err == nil {
			t.Errorf("%s: Map accepted the corruption", name)
		}
	}
	// Truncation changes the size out from under the declared geometry.
	p := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(p, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Map(p); err == nil {
		t.Error("Map accepted a truncated file")
	}
}

// Rewriting a file invalidates its verification-registry entry: the replaced
// bytes get the full check, not the memoized shallow path.
func TestMapReverifiesReplacedFile(t *testing.T) {
	requireMmap(t)
	ga, ha := buildPair(t, gen.Random(200, 800, 64, gen.UWD, 1))
	gb, hb := buildPair(t, gen.Random(250, 900, 64, gen.UWD, 2))
	dir := t.TempDir()
	path := writeSnap(t, dir, "g.snap", ga, ha)

	_, _, m, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Atomic replace, as the catalog's snapshot refresh does.
	if err := WriteFile(path, gb, hb); err != nil {
		t.Fatal(err)
	}
	mg, _, m2, err := Map(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if mg.Fingerprint() != gb.Fingerprint() {
		t.Fatal("Map served stale identity for a replaced file")
	}
}
