//go:build !unix

package snapshot

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errors.New("snapshot: mmap unsupported on this platform")
}

func munmap(b []byte) error { return nil }

func fileID(fi os.FileInfo) (vkey, bool) { return vkey{}, false }
