// Package snapshot persists a (graph, Component Hierarchy) pair as one
// versioned binary artifact — the compiled form of an instance in the serving
// stack. The paper's pipeline is two-phase (build the hierarchy once, answer
// many queries); a snapshot makes the first phase a one-time compile step.
// Format v2 goes further: its graph section is laid out byte-for-byte as the
// in-memory CSR arrays, page-aligned, so Map can mmap the file and serve the
// arrays zero-copy — load is a page mapping plus validation, and resident
// graphs cost page cache instead of heap.
//
// # Format v2 (all little-endian)
//
// Fixed 96-byte header:
//
//	off  0  magic      [8]byte  "SSSPSNAP"
//	off  8  version    uint32   2
//	off 12  fpN        uint32   graph fingerprint: vertices (≤ MaxInt32)
//	off 16  fpM        uint64   graph fingerprint: undirected edges
//	off 24  fpCRC      uint64   graph fingerprint: CRC-64/ECMA over the CSR arrays
//	off 32  arcs       uint64   stored arc count (= len(targets) = len(weights))
//	off 40  minW       uint32   smallest edge weight (0 iff no edges)
//	off 44  maxW       uint32   largest edge weight
//	off 48  grphOff    uint64   graph section offset, always 4096 (page-aligned)
//	off 56  grphLen    uint64   graph section length = (fpN+1)*8 + arcs*8
//	off 64  chieOff    uint64   hierarchy section offset = grphOff + grphLen
//	off 72  chieLen    uint64   hierarchy section length
//	off 80  chieCRC    uint64   CRC-64/ECMA over the hierarchy section
//	off 88  headerCRC  uint64   CRC-64/ECMA over header bytes [0, 88)
//
// Bytes [96, 4096) are zero padding (verified zero on read — they sit outside
// both section checksums).
//
// Graph section at grphOff: offsets [fpN+1]int64, targets [arcs]int32,
// weights [arcs]uint32, concatenated with no framing. These are exactly the
// bytes graph.Fingerprint hashes, so fpCRC doubles as this section's checksum
// and no separate field is needed. grphLen is a multiple of 8, so chieOff is
// 8-aligned and every array in both sections starts at an offset aligned for
// its element type — the alignment contract the mmap views rely on.
//
// Hierarchy section at chieOff — a 40-byte header:
//
//	off  0  nodes     uint32  total CH nodes (leaves + internal)
//	off  4  leaves    uint32  leaf count (= graph vertices)
//	off  8  root      int32   root node id (-1 iff nodes == 0)
//	off 12  maxLevel  int32
//	off 16  virtual   uint32  1 if the root is virtual (disconnected graph)
//	off 20  childLen  uint32  total child links
//	off 24  fpM       uint64  owning graph's fingerprint (binds the section:
//	off 32  fpCRC     uint64  a CH spliced from another snapshot is refused)
//
// followed by level, parent, vertexCount (each [nodes]int32), childStart
// [nodes-leaves+1]int32, children [childLen]int32. The file ends exactly at
// chieOff+chieLen; readers with access to the file size reject any mismatch.
//
// # Read paths
//
// Map (v2 only) mmaps the file and hands out graph/hierarchy arrays aliasing
// the mapping via unsafe.Slice. The first Map of a file verifies everything —
// header CRC and geometry, zero padding, both section CRCs, the O(n+m) CSR
// validation scan, structural hierarchy checks — then records the file's
// identity (device, inode, size, mtime) in a small registry; re-mapping the
// same unchanged file skips straight to O(1) shape checks. The returned
// Mapping owns the mapped bytes and must outlive the graph.
//
// Read/ReadFile decode either version into fresh heap arrays (the fallback
// for v1 files and platforms without mmap). Declared section lengths are
// bounded by the remaining file size — or read chunk-by-chunk when the size
// is unknown — so a corrupt header cannot force a giant allocation, and a
// header vertex count above MaxInt32 is rejected outright.
//
// # Format v1 (legacy, read-only in practice)
//
// The same 32-byte header prefix (version 1, no fields past fpCRC), then two
// framed sections, each tag[4] + length uint64 + payload + crc uint64: tag
// "GRPH" (n uint32, arcs uint64, then the three CSR arrays) and tag "CHIE"
// (the ch.WriteTo byte stream, which carries its own fingerprint binding).
// v1 payloads are unaligned, so Map refuses them with ErrNotMappable;
// WriteV1 remains available for migration tests and benchmarks.
//
// Every section in both formats is independently checksummed, so corruption
// is localized in error reports and detected before any derived structure is
// built. The leading fingerprint identifies the instance without reading the
// arrays (ReadFingerprint) and is cross-checked against the decoded graph.
//
// See DESIGN.md §9 ("Graph catalog & snapshots") for how this package fits the system.
package snapshot
