// Package snapshot persists a (graph, Component Hierarchy) pair as one
// versioned binary artifact — the compiled form of an instance in the serving
// stack. The paper's pipeline is two-phase (build the hierarchy once, answer
// many queries); a snapshot makes the first phase a one-time compile step:
// loading a snapshot is a sequential binary read plus cheap validation,
// roughly an order of magnitude faster than re-parsing text DIMACS and
// rebuilding the hierarchy, which is what lets a catalog bring graphs into
// service (or back after eviction) off the request path and fast.
//
// Format (all little-endian):
//
//	magic    [8]byte  "SSSPSNAP"
//	version  uint32   (currently 1)
//	fpN      uint32   graph fingerprint: vertices
//	fpM      uint64   graph fingerprint: undirected edges
//	fpCRC    uint64   graph fingerprint: CRC-64/ECMA over the CSR arrays
//	section "GRPH":
//	    tag     [4]byte
//	    length  uint64   payload bytes
//	    payload          n uint32, arcs uint64,
//	                     offsets [n+1]int64, targets [arcs]int32,
//	                     weights [arcs]uint32
//	    crc     uint64   CRC-64/ECMA of the payload
//	section "CHIE":
//	    tag     [4]byte
//	    length  uint64
//	    payload          the ch.WriteTo byte stream (self-checksummed,
//	                     carries its own graph fingerprint)
//	    crc     uint64   CRC-64/ECMA of the payload
//
// Every section is independently checksummed, so corruption is localized in
// error reports and detected before any derived structure is built. The
// leading fingerprint identifies the instance without reading the arrays
// (ReadFingerprint), and is cross-checked against the decoded graph.
//
// See DESIGN.md §9 ("Graph catalog & snapshots") for how this package fits the system.
package snapshot
