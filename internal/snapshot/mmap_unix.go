//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only. MAP_SHARED keeps the pages backed
// by the file (page cache), not anonymous memory.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	return syscall.Munmap(b)
}

// fileID derives the verification-registry key from stat. A false ok means
// the platform's stat does not expose device/inode and the caller must treat
// the file as never verified.
func fileID(fi os.FileInfo) (vkey, bool) {
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return vkey{}, false
	}
	return vkey{
		dev:       uint64(st.Dev),
		ino:       uint64(st.Ino),
		size:      fi.Size(),
		mtimeNano: fi.ModTime().UnixNano(),
	}, true
}
