package stress

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// A transform is one metamorphic transformation of an instance: a derived
// graph plus source set whose exact distance vector is predictable from the
// base instance's distances. Running every solver on the derived instance
// and comparing against want turns each transformation into an oracle that
// needs no reference solver.
type transform struct {
	name    string
	g       *graph.Graph
	sources []int32
	want    []int64
}

// checkMetamorphic builds the transformations of (g, sources) and asserts
// every applicable solver reproduces the predicted distances. base is the
// already-cross-checked distance vector from sources[0].
func checkMetamorphic(cfg Config, rt *par.Runtime, name string, g *graph.Graph, sources []int32, base []int64) *Failure {
	for _, tr := range metamorphs(g, sources[0], base) {
		in := solver.NewInstance(tr.g, rt)
		for _, s := range cfg.Solvers {
			if !s.Applicable(tr.g) {
				continue
			}
			got := s.Solve(in, tr.sources)
			if v := firstDiff(got, tr.want); v >= 0 {
				return &Failure{
					Check: fmt.Sprintf("metamorphic-%s(%s)", tr.name, s.Name),
					Inst:  name,
					Detail: fmt.Sprintf("transformed d[%d] = %d, predicted %d (sources %v)",
						v, got[v], tr.want[v], tr.sources),
					G: g, Sources: sources, // the witness is the base instance
				}
			}
		}
	}
	// Source merging: the multi-source labelling must equal the elementwise
	// minimum of the single-source labellings. Native multi-source solvers
	// (Thorup) take the merged query in one run; folding solvers re-derive
	// it, so both sides of the property get exercised.
	if len(sources) > 1 {
		in := solver.NewInstance(g, rt)
		want := elementwiseMinSingles(in, cfg.Solvers, sources)
		if want != nil {
			for _, s := range cfg.Solvers {
				if !s.Applicable(g) {
					continue
				}
				got := s.Solve(in, sources)
				if v := firstDiff(got, want); v >= 0 {
					return &Failure{
						Check: fmt.Sprintf("metamorphic-source-merge(%s)", s.Name),
						Inst:  name,
						Detail: fmt.Sprintf("multi-source d[%d] = %d, min of singles %d (sources %v)",
							v, got[v], want[v], sources),
						G: g, Sources: sources,
					}
				}
			}
		}
	}
	return nil
}

// elementwiseMinSingles computes the merged-source oracle from the first
// applicable solver's single-source runs.
func elementwiseMinSingles(in *solver.Instance, pool []solver.Solver, sources []int32) []int64 {
	for _, s := range pool {
		if !s.Applicable(in.G) {
			continue
		}
		out := s.Solve(in, sources[:1])
		for _, src := range sources[1:] {
			for v, d := range s.Solve(in, []int32{src}) {
				if d < out[v] {
					out[v] = d
				}
			}
		}
		return out
	}
	return nil
}

// metamorphs derives the transformation set for a single-source instance.
func metamorphs(g *graph.Graph, src int32, base []int64) []transform {
	var out []transform
	if tr, ok := scaleWeights(g, src, base, 3); ok {
		out = append(out, tr)
	}
	out = append(out, relabel(g, src, base))
	if tr, ok := splitEdges(g, src, base); ok {
		out = append(out, tr)
	}
	return out
}

// scaleWeights multiplies every edge weight by k; every finite distance must
// scale by exactly k. Skipped when scaling would overflow the weight cap.
func scaleWeights(g *graph.Graph, src int32, base []int64, k uint32) (transform, bool) {
	if g.MaxWeight() > graph.MaxWeight/k {
		return transform{}, false
	}
	edges := g.Edges()
	for i := range edges {
		edges[i].W *= k
	}
	want := make([]int64, len(base))
	for v, d := range base {
		if d == graph.Inf {
			want[v] = graph.Inf
		} else {
			want[v] = d * int64(k)
		}
	}
	return transform{
		name:    "scale",
		g:       graph.FromEdges(g.NumVertices(), edges),
		sources: []int32{src},
		want:    want,
	}, true
}

// relabel applies a random vertex permutation pi; the distance of pi(v) from
// pi(src) must equal the distance of v from src. This catches any solver
// state that leaks across vertex ids (off-by-one indexing, stale scratch).
func relabel(g *graph.Graph, src int32, base []int64) transform {
	n := g.NumVertices()
	pi := rng.New(uint64(n)*0x9e3779b9 + uint64(src)).Perm(n)
	edges := g.Edges()
	for i := range edges {
		edges[i].U = int32(pi[edges[i].U])
		edges[i].V = int32(pi[edges[i].V])
	}
	want := make([]int64, n)
	for v, d := range base {
		want[pi[v]] = d
	}
	return transform{
		name:    "relabel",
		g:       graph.FromEdges(n, edges),
		sources: []int32{int32(pi[src])},
		want:    want,
	}
}

// splitEdges replaces up to eight edges (u,v,w) with w >= 2 by a fresh
// midpoint x and edges (u,x,w1), (x,v,w2) with w1+w2 = w. Distances between
// original vertices are preserved exactly (the replacement path has the same
// total weight and the midpoint offers no shortcut); each midpoint's
// distance is min(d(u)+w1, d(v)+w2). This stresses the solvers' handling of
// degree-2 chain vertices and CH level boundaries (w1, w2 usually sit at
// lower levels than w).
func splitEdges(g *graph.Graph, src int32, base []int64) (transform, bool) {
	edges := g.Edges()
	var splittable []int
	for i, e := range edges {
		if e.W >= 2 {
			splittable = append(splittable, i)
		}
	}
	if len(splittable) == 0 {
		return transform{}, false
	}
	const maxSplits = 8
	step := 1
	if len(splittable) > maxSplits {
		step = len(splittable) / maxSplits
	}
	n := g.NumVertices()
	want := make([]int64, n, n+maxSplits)
	copy(want, base)
	var rebuilt []graph.Edge
	picked := make(map[int]bool)
	for i := 0; i < len(splittable) && len(picked) < maxSplits; i += step {
		picked[splittable[i]] = true
	}
	next := int32(n)
	for i, e := range edges {
		if !picked[i] {
			rebuilt = append(rebuilt, e)
			continue
		}
		w1 := e.W / 2
		w2 := e.W - w1
		x := next
		next++
		rebuilt = append(rebuilt, graph.Edge{U: e.U, V: x, W: w1}, graph.Edge{U: x, V: e.V, W: w2})
		dx := graph.Inf
		if base[e.U] != graph.Inf {
			dx = base[e.U] + int64(w1)
		}
		if base[e.V] != graph.Inf && base[e.V]+int64(w2) < dx {
			dx = base[e.V] + int64(w2)
		}
		want = append(want, dx)
	}
	return transform{
		name:    "edge-split",
		g:       graph.FromEdges(int(next), rebuilt),
		sources: []int32{src},
		want:    want,
	}, true
}
