// Package stress is the differential and metamorphic stress-testing harness
// for every SSSP solver in the repository. It is the correctness gate behind
// `make stress` and cmd/stress.
//
// One instance check layers four independent oracles:
//
//   - differential: every registered solver (internal/solver) computes the
//     same distance vector, compared pairwise; bidirectional Dijkstra is
//     cross-checked on sampled s-t pairs.
//   - certification: each vector is certified by internal/verify's
//     feasibility+tightness rules, which are as strong as re-running
//     Dijkstra but independent of every solver implementation.
//   - metamorphic: predictable distance transformations must hold under
//     uniform weight scaling, vertex relabeling, edge splitting, and merging
//     sources into one multi-source query (internal/stress/metamorphic.go).
//   - structural: the Component Hierarchy passes ch.Validate after
//     construction and core.Query.CheckInvariants after traversal, and
//     concurrent queries over one shared hierarchy (the paper's Figure 5
//     workload) reproduce the serial answers — run under -race by `make
//     stress`.
//   - engine: the query-execution plane (internal/engine) answers a
//     concurrent mixed workload — singleflight races, cache hits, explicit
//     solvers, batches — identically to Dijkstra (engine.go).
//   - catalog: the multi-graph catalog (internal/catalog) survives reloads,
//     loads, and unloads racing beneath live queries without ever failing an
//     acquire on a ready graph or serving a stale generation's distances
//     (catalog.go).
//
// Failures are minimized by a built-in shrinker (shrink.go) and emitted as
// self-contained DIMACS repro files (repro.go) that cmd/stress can replay.
//
// See DESIGN.md §7 ("Correctness methodology") for how this package fits the system.
package stress
