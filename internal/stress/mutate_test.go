package stress

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/mutate"
	"repro/internal/par"
)

// TestMutationSequenceDeterministic: the oracle's sequence is a pure function
// of the seed and graph, so failures re-derive identically on replay.
func TestMutationSequenceDeterministic(t *testing.T) {
	g := gen.Random(200, 800, 1<<10, gen.UWD, 11)
	a := genMutationSequence(g, 6, 99)
	b := genMutationSequence(g, 6, 99)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sequence lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(mutate.EncodeDelta(a[i]), mutate.EncodeDelta(b[i])) {
			t.Fatalf("batch %d differs between identical seeds", i)
		}
	}
	if c := genMutationSequence(g, 6, 100); len(c) > 0 &&
		bytes.Equal(mutate.EncodeDelta(a[0]), mutate.EncodeDelta(c[0])) {
		t.Fatal("different seeds produced the same first batch")
	}
}

// TestMutationOracleClean: on a correct tree the oracle must pass, with both
// the incremental path and the forced-fallback path (every third batch)
// exercised.
func TestMutationOracleClean(t *testing.T) {
	rt := par.NewExec(2)
	g := gen.Random(150, 600, 1<<10, gen.UWD, 5)
	cfg := Config{Seed: 5, MutateRounds: 6}.withDefaults()
	if f := checkMutate(cfg, rt, "clean", g, []int32{0, 50, 100}); f != nil {
		t.Fatalf("oracle tripped on correct machinery: %v", f)
	}
}

// TestMutationFaultCaughtShrunkAndReplayed is the dynamic-graph acceptance
// gate: with the planted repair bug active (the incremental path mis-applies
// the first weighted op by one), the sweep must catch it, the shrinker must
// reduce both the witness graph and the mutation sequence to near-minimal,
// and the written repro (DIMACS pair + .mut sidecar) must reproduce the same
// failure through ReplayFile.
func TestMutationFaultCaughtShrunkAndReplayed(t *testing.T) {
	cfg := Config{
		Seed:        7,
		MaxN:        128,
		Workers:     2,
		MutateFault: true,
		NoRace:      true,
	}
	f := Run(cfg)
	if f == nil {
		t.Fatal("planted repair fault not caught")
	}
	if !strings.HasPrefix(f.Check, "mutate-") {
		t.Fatalf("failure not attributed to the mutation oracle: %v", f)
	}
	if n := f.G.NumVertices(); n > 64 {
		t.Fatalf("graph shrinker left %d vertices, want <= 64 (failure: %v)", n, f)
	}
	totalOps := 0
	for _, b := range f.Mutations {
		totalOps += len(b.Ops)
	}
	if len(f.Mutations) > 2 || totalOps > 2 {
		t.Fatalf("sequence shrinker left %d batches / %d ops, want near-minimal (failure: %v)",
			len(f.Mutations), totalOps, f)
	}
	t.Logf("shrunk witness: n=%d m=%d batches=%d ops=%d: %v",
		f.G.NumVertices(), f.G.NumEdges(), len(f.Mutations), totalOps, f)

	dir := t.TempDir()
	grPath, err := f.WriteRepro(dir)
	if err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	mutPath := strings.TrimSuffix(grPath, ".gr") + ".mut"
	if _, err := os.Stat(mutPath); err != nil {
		t.Fatalf("mutation repro missing its .mut sidecar: %v", err)
	}
	rep, err := LoadRepro(grPath)
	if err != nil {
		t.Fatalf("LoadRepro: %v", err)
	}
	if len(rep.Mutations) != len(f.Mutations) || !rep.Fault {
		t.Fatalf("sidecar round trip lost the sequence or fault flag: %+v", rep)
	}

	rt := par.NewExec(2)
	f2, err := ReplayFile(cfg, rt, grPath)
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	if f2 == nil || f2.Check != f.Check {
		t.Fatalf("replayed repro did not reproduce %q: got %v", f.Check, f2)
	}
}

// TestShrinkMutationsConverges: ddmin over batches and ops must reduce a
// padded sequence to the single op the property needs.
func TestShrinkMutationsConverges(t *testing.T) {
	seq := []*mutate.Batch{
		{Ops: []mutate.Op{
			{Op: mutate.OpSetWeight, U: 0, V: 1, W: 5},
			{Op: mutate.OpDelete, U: 2, V: 3},
		}},
		{Ops: []mutate.Op{
			{Op: mutate.OpInsert, U: 4, V: 5, W: 1}, // the needle
			{Op: mutate.OpSetWeight, U: 6, V: 7, W: 9},
		}},
		{Ops: []mutate.Op{{Op: mutate.OpDelete, U: 8, V: 9}}},
	}
	keep := func(cand []*mutate.Batch) bool {
		for _, b := range cand {
			for _, op := range b.Ops {
				if op.Op == mutate.OpInsert {
					return true
				}
			}
		}
		return false
	}
	out := ShrinkMutations(seq, keep)
	if len(out) != 1 || len(out[0].Ops) != 1 || out[0].Ops[0].Op != mutate.OpInsert {
		t.Fatalf("shrinker stalled at %d batches: %+v", len(out), out)
	}
}

// TestMutationSmokeCorpusEntry pins the committed .mut sidecar to the replay
// path: the corpus entry must load with its sequence attached and replay
// clean (TestReplayCorpus also covers it, as part of the whole directory).
func TestMutationSmokeCorpusEntry(t *testing.T) {
	grPath := filepath.Join("..", "..", "testdata", "stress", "mutation-smoke.gr")
	rep, err := LoadRepro(grPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Mutations) != 3 || rep.Fault {
		t.Fatalf("sidecar not loaded as expected: %d batches, fault=%v", len(rep.Mutations), rep.Fault)
	}
	f, err := ReplayFile(Config{Workers: 2}, par.NewExec(2), grPath)
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatalf("smoke entry failed: %v", f)
	}
}
