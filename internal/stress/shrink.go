package stress

import (
	"repro/internal/graph"
)

// Property reports whether the failure of interest still reproduces on the
// candidate instance. Shrink only commits candidates the property accepts.
type Property func(g *graph.Graph, sources []int32) bool

// shrinkBudget caps the number of property evaluations per Shrink call; each
// evaluation re-runs the full (race-disabled) oracle stack, so the budget
// bounds worst-case shrink time on stubborn failures.
const shrinkBudget = 400

// Shrink minimizes a failing instance with a delta-debugging loop: halve the
// vertex set while the discrepancy reproduces, then drop edge chunks, then
// simplify weights and sources, then compact away isolated vertices. The
// result is the smallest witness found (never worse than the input) and is
// what WriteRepro persists.
func Shrink(g *graph.Graph, sources []int32, keep Property) (*graph.Graph, []int32) {
	s := &shrinker{keep: keep, budget: shrinkBudget, g: g, sources: sources}
	for changed := true; changed && s.budget > 0; {
		changed = false
		changed = s.halveVertices() || changed
		changed = s.reduceEdges() || changed
		changed = s.simplifyWeights() || changed
		changed = s.simplifySources() || changed
		changed = s.compact() || changed
	}
	return s.g, s.sources
}

type shrinker struct {
	keep    Property
	budget  int
	g       *graph.Graph
	sources []int32
}

// try commits the candidate if the property still holds on it.
func (s *shrinker) try(g *graph.Graph, sources []int32) bool {
	if s.budget <= 0 || len(sources) == 0 || g.NumVertices() == 0 {
		return false
	}
	s.budget--
	if !s.keep(g, sources) {
		return false
	}
	s.g, s.sources = g, sources
	return true
}

// tryInduced restricts the instance to the given vertex set, remapping the
// sources; sources outside the set are dropped.
func (s *shrinker) tryInduced(vertices []int32) bool {
	if len(vertices) == 0 || len(vertices) >= s.g.NumVertices() {
		return false
	}
	sub, new2old := s.g.InducedSubgraph(vertices)
	old2new := make(map[int32]int32, len(new2old))
	for nv, ov := range new2old {
		old2new[ov] = int32(nv)
	}
	var srcs []int32
	for _, src := range s.sources {
		if nv, ok := old2new[src]; ok {
			srcs = append(srcs, nv)
		}
	}
	if len(srcs) == 0 {
		return false
	}
	return s.try(sub, srcs)
}

// halveVertices repeatedly tries to keep only the first or second half of
// the vertex range.
func (s *shrinker) halveVertices() bool {
	any := false
	for s.budget > 0 {
		n := s.g.NumVertices()
		if n < 2 {
			return any
		}
		half := n / 2
		lo := make([]int32, half)
		hi := make([]int32, n-half)
		for i := 0; i < half; i++ {
			lo[i] = int32(i)
		}
		for i := half; i < n; i++ {
			hi[i-half] = int32(i)
		}
		if s.tryInduced(lo) || s.tryInduced(hi) {
			any = true
			continue
		}
		return any
	}
	return any
}

// reduceEdges is ddmin over the edge list: remove chunks of shrinking size
// while the failure reproduces.
func (s *shrinker) reduceEdges() bool {
	any := false
	for chunks := 2; s.budget > 0; {
		edges := s.g.Edges()
		if len(edges) == 0 || chunks > len(edges) || chunks > 64 {
			return any
		}
		size := (len(edges) + chunks - 1) / chunks
		removed := false
		for at := 0; at < len(edges); at += size {
			end := at + size
			if end > len(edges) {
				end = len(edges)
			}
			rest := make([]graph.Edge, 0, len(edges)-(end-at))
			rest = append(rest, edges[:at]...)
			rest = append(rest, edges[end:]...)
			if s.try(graph.FromEdges(s.g.NumVertices(), rest), s.sources) {
				removed = true
				any = true
				break // edge list changed; restart at coarse granularity
			}
		}
		if removed {
			chunks = 2
		} else {
			chunks *= 2
		}
	}
	return any
}

// simplifyWeights tries all-unit weights, then halved weights — smaller,
// rounder weights make the emitted repro far easier to reason about.
func (s *shrinker) simplifyWeights() bool {
	edges := s.g.Edges()
	if len(edges) == 0 {
		return false
	}
	unit := make([]graph.Edge, len(edges))
	allUnit := true
	for i, e := range edges {
		if e.W != 1 {
			allUnit = false
		}
		unit[i] = graph.Edge{U: e.U, V: e.V, W: 1}
	}
	if !allUnit && s.try(graph.FromEdges(s.g.NumVertices(), unit), s.sources) {
		return true
	}
	halved := make([]graph.Edge, len(edges))
	anyHalved := false
	for i, e := range edges {
		w := e.W / 2
		if w < 1 {
			w = 1
		}
		if w != e.W {
			anyHalved = true
		}
		halved[i] = graph.Edge{U: e.U, V: e.V, W: w}
	}
	return anyHalved && s.try(graph.FromEdges(s.g.NumVertices(), halved), s.sources)
}

// simplifySources tries a single source, preferring vertex 0.
func (s *shrinker) simplifySources() bool {
	any := false
	if len(s.sources) > 1 && s.try(s.g, s.sources[:1]) {
		any = true
	}
	if len(s.sources) == 1 && s.sources[0] != 0 && s.try(s.g, []int32{0}) {
		any = true
	}
	return any
}

// compact drops isolated non-source vertices (edge reduction leaves them
// behind), renumbering the survivors densely.
func (s *shrinker) compact() bool {
	n := s.g.NumVertices()
	isSource := make(map[int32]bool, len(s.sources))
	for _, src := range s.sources {
		isSource[src] = true
	}
	var kept []int32
	for v := int32(0); v < int32(n); v++ {
		if s.g.Degree(v) > 0 || isSource[v] {
			kept = append(kept, v)
		}
	}
	if len(kept) == n {
		return false
	}
	return s.tryInduced(kept)
}
