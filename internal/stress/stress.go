package stress

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
	"repro/internal/verify"
)

// Config parameterizes a stress run. The zero value is usable: Run fills in
// the documented defaults.
type Config struct {
	Seed    uint64                           // base seed; the whole run is a function of it
	Rounds  int                              // sweep repetitions with derived seeds (default 1)
	MaxN    int                              // vertex-count ceiling for generated instances (default 256)
	Workers int                              // exec-runtime goroutines (default 4)
	Targets int                              // sampled s-t pairs per instance for point-to-point solvers (default 4)
	Solvers []solver.Solver                  // solver pool (default solver.All()); tests may append broken ones
	NoRace  bool                             // skip the concurrent-query stage (the shrinker sets this for speed)
	Logf    func(format string, args ...any) // optional progress sink

	MutateRounds int  // mutation batches per instance for the dynamic-graph oracle (default 4; negative disables)
	MutateFault  bool // plant the incremental-repair bug (mutate.Options.InjectFault); the oracle must catch it
}

func (cfg Config) withDefaults() Config {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 1
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Targets <= 0 {
		cfg.Targets = 4
	}
	if cfg.Solvers == nil {
		cfg.Solvers = solver.All()
	}
	if cfg.MutateRounds == 0 {
		cfg.MutateRounds = 4
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// Failure describes one reproducible discrepancy. The graph and sources are
// the (possibly shrunk) witness; WriteRepro persists them as DIMACS files.
type Failure struct {
	Check   string // which oracle tripped, e.g. "differential(thorup~mlb)"
	Inst    string // instance description at detection time
	Detail  string // human-readable discrepancy
	Seed    uint64 // base seed of the run that found it
	G       *graph.Graph
	Sources []int32

	// Mutation-oracle failures additionally carry the (shrunk) batch
	// sequence and whether the planted repair fault was active; WriteRepro
	// persists both in a .mut sidecar next to the DIMACS pair.
	Mutations   []*mutate.Batch
	MutateFault bool
}

func (f *Failure) Error() string {
	return fmt.Sprintf("stress: %s on %s (n=%d m=%d sources=%v seed=%d): %s",
		f.Check, f.Inst, f.G.NumVertices(), f.G.NumEdges(), f.Sources, f.Seed, f.Detail)
}

// Run executes the configured number of sweep rounds and returns the first
// failure, shrunk to a minimal witness, or nil if every check passed.
func Run(cfg Config) *Failure {
	cfg = cfg.withDefaults()
	rt := par.NewExec(cfg.Workers)
	for round := 0; round < cfg.Rounds; round++ {
		roundSeed := cfg.Seed + uint64(round)*0x9e3779b97f4a7c15
		for _, sp := range Sweep(roundSeed, cfg.MaxN) {
			g := sp.Generate()
			sources := pickSources(sp.Seed, g.NumVertices())
			cfg.Logf("stress: %-38s n=%-5d m=%-6d sources=%v", sp.Name(), g.NumVertices(), g.NumEdges(), sources)
			if f := CheckInstance(cfg, rt, sp.Name(), g, sources); f != nil {
				f.Seed = cfg.Seed
				return shrinkFailure(cfg, rt, f)
			}
		}
	}
	return nil
}

// shrinkFailure minimizes a failing instance while the same oracle keeps
// tripping, then re-describes the failure on the shrunk witness.
func shrinkFailure(cfg Config, rt *par.Runtime, f *Failure) *Failure {
	cfg.Logf("stress: FAILURE %s — shrinking (n=%d m=%d)", f.Check, f.G.NumVertices(), f.G.NumEdges())
	sub := cfg
	sub.NoRace = true
	sub.Logf = func(string, ...any) {}
	keep := func(g *graph.Graph, sources []int32) bool {
		f2 := CheckInstance(sub, rt, "shrink", g, sources)
		return f2 != nil && f2.Check == f.Check
	}
	g, sources := Shrink(f.G, f.Sources, keep)
	f2 := CheckInstance(sub, rt, f.Inst+"(shrunk)", g, sources)
	if f2 == nil {
		// Cannot happen (Shrink only returns witnesses keep accepted), but
		// never trade a real failure for a nil one.
		return f
	}
	f2.Seed = f.Seed
	if len(f2.Mutations) > 0 {
		f2 = shrinkMutationSequence(sub, rt, f2)
	}
	cfg.Logf("stress: shrunk to n=%d m=%d sources=%v", f2.G.NumVertices(), f2.G.NumEdges(), f2.Sources)
	return f2
}

// pickSources derives a deterministic multi-source set (up to three spread
// vertices) from the instance seed. The first entry doubles as the
// single-source query.
func pickSources(seed uint64, n int) []int32 {
	if n <= 0 {
		return nil
	}
	r := rng.New(seed ^ 0x5eed5eed5eed5eed)
	s0 := int32(r.Intn(n))
	out := []int32{s0}
	for _, off := range []int{n / 3, 2 * n / 3} {
		s := (s0 + int32(off)) % int32(n)
		dup := false
		for _, have := range out {
			if have == s {
				dup = true
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// CheckInstance runs the full oracle stack on one instance and returns the
// first discrepancy (without shrinking), or nil. It is exported so that
// repro replay (cmd/stress -replay, the regression corpus test) applies
// exactly the checks the sweep applies.
func CheckInstance(cfg Config, rt *par.Runtime, name string, g *graph.Graph, sources []int32) *Failure {
	cfg = cfg.withDefaults()
	n := g.NumVertices()
	if n == 0 || len(sources) == 0 {
		return nil
	}
	fail := func(check, format string, args ...any) *Failure {
		return &Failure{Check: check, Inst: name, Detail: fmt.Sprintf(format, args...), G: g, Sources: sources}
	}
	if err := g.Validate(); err != nil {
		return fail("graph-validate", "%v", err)
	}

	// Structural invariants of the Component Hierarchy, after construction.
	in := solver.NewInstance(g, rt)
	h := in.Hierarchy()
	if err := h.Validate(); err != nil {
		return fail("ch-validate", "%v", err)
	}

	pool := make([]solver.Solver, 0, len(cfg.Solvers))
	for _, s := range cfg.Solvers {
		if s.Applicable(g) {
			pool = append(pool, s)
		}
	}

	// Differential + certification, single- then multi-source.
	sourceSets := [][]int32{sources[:1]}
	if len(sources) > 1 {
		sourceSets = append(sourceSets, sources)
	}
	var ref []int64 // reference distances from sources[0] (first solver's answer)
	for _, srcs := range sourceSets {
		results := make([][]int64, len(pool))
		for i, s := range pool {
			d := s.Solve(in, srcs)
			if len(d) != n {
				return fail("shape("+s.Name+")", "%d distances for %d vertices", len(d), n)
			}
			results[i] = d
		}
		for i := 0; i < len(pool); i++ {
			for j := i + 1; j < len(pool); j++ {
				if v := firstDiff(results[i], results[j]); v >= 0 {
					return fail(fmt.Sprintf("differential(%s~%s)", pool[i].Name, pool[j].Name),
						"sources %v: d[%d] = %d vs %d", srcs, v, results[i][v], results[j][v])
				}
			}
		}
		for i, s := range pool {
			if err := verify.DistancesSerial(g, srcs, results[i]); err != nil {
				return fail("certify("+s.Name+")", "sources %v: %v", srcs, err)
			}
		}
		if len(srcs) == 1 && len(results) > 0 {
			ref = results[0]
		}
	}
	if ref == nil {
		return nil // empty solver pool: nothing further to cross-check
	}

	// Thorup traversal invariants (minD/unsettled bookkeeping) after a run.
	q := core.NewSolver(h, rt).Query()
	q.RunFromSources(sources)
	if err := q.CheckInvariants(); err != nil {
		return fail("ch-traversal-invariant", "sources %v: %v", sources, err)
	}

	// Point-to-point solvers against the reference vector on sampled targets.
	for _, pp := range solver.PointToPoints() {
		r := rng.New(uint64(sources[0]) ^ 0x7a11)
		for k := 0; k < cfg.Targets; k++ {
			t := int32(r.Intn(n))
			got := pp.Dist(in, sources[0], t)
			if got != ref[t] {
				return fail("point-to-point("+pp.Name+")",
					"st(%d,%d) = %d, reference %d", sources[0], t, got, ref[t])
			}
		}
	}

	// Metamorphic transformations.
	if f := checkMetamorphic(cfg, rt, name, g, sources, ref); f != nil {
		return f
	}

	// Dynamic-graph oracle: random mutation sequences through the
	// incremental-repair and fallback paths vs an independent replay.
	if f := checkMutate(cfg, rt, name, g, sources); f != nil {
		return f
	}

	// Concurrent-query race stress: several queries share one hierarchy and
	// one runtime (the paper's Figure 5 workload); delta-stepping runs beside
	// them on the same runtime. Meaningful under `go test -race` / `go run
	// -race`, which is how make stress invokes it.
	if !cfg.NoRace && n > 1 {
		srcs := raceSources(sources[0], n)
		res := core.NewSolver(h, rt).RunMany(srcs)
		var wg sync.WaitGroup
		deltaRes := make([][]int64, len(srcs))
		delta := deltastep.DefaultDelta(g)
		for i, s := range srcs {
			wg.Add(1)
			go func(i int, s int32) {
				defer wg.Done()
				deltaRes[i] = deltastep.SSSP(rt, g, s, delta)
			}(i, s)
		}
		wg.Wait()
		for i, s := range srcs {
			want := dijkstra.SSSP(g, s)
			if v := firstDiff(res[i], want); v >= 0 {
				return fail("race-shared-ch", "concurrent query %d (src %d): d[%d] = %d, want %d",
					i, s, v, res[i][v], want[v])
			}
			if v := firstDiff(deltaRes[i], want); v >= 0 {
				return fail("race-deltastep", "concurrent run %d (src %d): d[%d] = %d, want %d",
					i, s, v, deltaRes[i][v], want[v])
			}
		}

		// The query-execution engine under a concurrent mixed workload
		// (dedup races, cache hits, batches) over the same instance.
		if f := checkEngine(cfg, name, g, sources, in); f != nil {
			return f
		}

		// The graph catalog under admin churn: reloads hot-swapping
		// generations beneath live queries, a second name loading and
		// unloading beside them (catalog.go).
		if f := checkCatalog(cfg, name, g, sources); f != nil {
			return f
		}
	}
	return nil
}

// raceSources spreads four query sources across the vertex range.
func raceSources(s0 int32, n int) []int32 {
	out := []int32{s0}
	for _, off := range []int{1, n / 4, n / 2} {
		s := (s0 + int32(off)) % int32(n)
		dup := false
		for _, have := range out {
			if have == s {
				dup = true
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// firstDiff returns the first index where a and b differ, or -1.
func firstDiff(a, b []int64) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
