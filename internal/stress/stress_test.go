package stress

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/solver"
)

// TestSweepClean is the deterministic correctness gate: one full sweep round
// across every family, every solver, every oracle. `make stress` runs this
// under -race.
func TestSweepClean(t *testing.T) {
	cfg := Config{Seed: 1, Rounds: 1, MaxN: 192, Workers: 4, Logf: t.Logf}
	if testing.Short() {
		cfg.MaxN = 64
	}
	if f := Run(cfg); f != nil {
		t.Fatalf("sweep found a failure on a presumed-correct tree: %v", f)
	}
}

// TestSweepDeterministic: the same seed must generate the same sweep and the
// same source sets — repro commands in failure reports depend on it.
func TestSweepDeterministic(t *testing.T) {
	a := Sweep(42, 128)
	b := Sweep(42, 128)
	if len(a) != len(b) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a[i], b[i])
		}
		ga, gb := a[i].Generate(), b[i].Generate()
		if ga.NumVertices() != gb.NumVertices() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("spec %d generated different graphs", i)
		}
	}
	if len(Sweep(43, 128)) == 0 || Sweep(43, 128)[0].Seed == a[0].Seed {
		t.Fatal("different seeds produced the same instance seeds")
	}
}

// brokenDijkstra returns an off-by-one SSSP: the distance of the
// highest-indexed reachable non-source vertex is reported one too large.
// This is the artificial fault of the acceptance criteria: the harness must
// catch it and shrink the witness to a tiny instance.
func brokenDijkstra() solver.Solver {
	return solver.Solver{
		Name: "broken",
		Solve: func(in *solver.Instance, sources []int32) []int64 {
			d := dijkstra.SSSP(in.G, sources[0])
			for _, s := range sources[1:] {
				for v, dv := range dijkstra.SSSP(in.G, s) {
					if dv < d[v] {
						d[v] = dv
					}
				}
			}
			for v := len(d) - 1; v >= 0; v-- {
				if d[v] != 0 && d[v] != graph.Inf {
					d[v]++ // the injected off-by-one
					break
				}
			}
			return d
		},
	}
}

// TestInjectedFaultCaughtAndShrunk: with a deliberately broken solver in the
// pool, the differential oracle must trip, and the shrinker must reduce the
// witness to at most 64 vertices while keeping the discrepancy alive.
func TestInjectedFaultCaughtAndShrunk(t *testing.T) {
	cfg := Config{
		Seed:    7,
		MaxN:    192,
		Workers: 2,
		Solvers: append(solver.All(), brokenDijkstra()),
	}
	f := Run(cfg)
	if f == nil {
		t.Fatal("injected off-by-one not caught")
	}
	if !strings.Contains(f.Check, "broken") {
		t.Fatalf("failure not attributed to the broken solver: %v", f)
	}
	if n := f.G.NumVertices(); n > 64 {
		t.Fatalf("shrinker left %d vertices, want <= 64 (failure: %v)", n, f)
	}
	t.Logf("shrunk witness: n=%d m=%d: %v", f.G.NumVertices(), f.G.NumEdges(), f)

	// The repro round trip must preserve the failure.
	dir := t.TempDir()
	grPath, err := f.WriteRepro(dir)
	if err != nil {
		t.Fatalf("WriteRepro: %v", err)
	}
	rt := par.NewExec(2)
	sub := cfg
	sub.NoRace = true
	f2, err := ReplayFile(sub, rt, grPath)
	if err != nil {
		t.Fatalf("ReplayFile: %v", err)
	}
	if f2 == nil || f2.Check != f.Check {
		t.Fatalf("replayed repro did not reproduce %q: got %v", f.Check, f2)
	}
}

// TestShrinkerConvergesOnTinyWitness: a fault that needs only a 2-vertex
// graph must shrink all the way down.
func TestShrinkerConvergesOnTinyWitness(t *testing.T) {
	g := Spec{Family: "rand", N: 128, C: 16, Seed: 3}.Generate()
	// Property: graph has at least one edge and at least 2 vertices (a stand-in
	// for "the bug reproduces"; minimal witnesses are 2 vertices, 1 edge).
	keep := func(g2 *graph.Graph, sources []int32) bool {
		return g2.NumVertices() >= 2 && g2.NumEdges() >= 1
	}
	sg, srcs := Shrink(g, []int32{5}, keep)
	if sg.NumVertices() > 2 || sg.NumEdges() > 1 {
		t.Fatalf("shrinker stalled at n=%d m=%d", sg.NumVertices(), sg.NumEdges())
	}
	if len(srcs) != 1 {
		t.Fatalf("sources not simplified: %v", srcs)
	}
}

// TestReplayCorpus replays the checked-in regression corpus: shrunk
// historical repros and representative degenerate instances. Every entry
// must pass the full oracle stack.
func TestReplayCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "stress")
	rt := par.NewExec(4)
	f, err := ReplayDir(Config{Logf: t.Logf}, rt, dir)
	if err != nil {
		t.Fatalf("corpus replay: %v", err)
	}
	if f != nil {
		t.Fatalf("corpus instance failed: %v", f)
	}
}

// TestCheckInstanceCatchesCorruptMetamorphic sanity-checks the metamorphic
// plumbing itself: a solver wrong only under relabeling (it special-cases
// vertex ids) must be caught by the relabel transform even though it is
// correct on the base instance... which differential would also catch.
// Instead, verify the transforms produce valid graphs by running a clean
// check on a couple of hand-built instances.
func TestCheckInstanceHandBuilt(t *testing.T) {
	rt := par.NewExec(2)
	// Multigraph with self-loops and parallel edges.
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 0, 7)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(3, 4, 9)
	g := b.Build() // vertex 5 isolated, {3,4} disconnected from {0,1,2}
	if f := CheckInstance(Config{}, rt, "hand-multigraph", g, []int32{0, 3}); f != nil {
		t.Fatalf("multigraph: %v", f)
	}
	// Single vertex, no edges.
	if f := CheckInstance(Config{}, rt, "hand-single", graph.NewBuilder(1).Build(), []int32{0}); f != nil {
		t.Fatalf("single vertex: %v", f)
	}
}
