package stress

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dimacs"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/par"
)

// mutSidecar is the JSON schema of the optional <slug>.mut file written next
// to a repro's DIMACS pair: the failing mutation sequence plus whether the
// planted repair fault was active when it tripped.
type mutSidecar struct {
	Fault   bool            `json:"fault,omitempty"`
	Batches []*mutate.Batch `json:"batches"`
}

// WriteRepro persists the failure's witness instance as a self-contained
// DIMACS pair: <dir>/<slug>.gr (graph, with the failure described in comment
// lines) and <dir>/<slug>.ss (source set). It returns the .gr path; replay
// with `stress -replay <path>` or by dropping the pair into the regression
// corpus under testdata/stress/.
func (f *Failure) WriteRepro(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	slug := fmt.Sprintf("repro-%s-seed%d", sanitize(f.Check), f.Seed)
	grPath := filepath.Join(dir, slug+".gr")
	comment := fmt.Sprintf("stress repro\ncheck: %s\ninstance: %s\nseed: %d\ndetail: %s",
		f.Check, f.Inst, f.Seed, strings.ReplaceAll(f.Detail, "\n", " "))
	gf, err := os.Create(grPath)
	if err != nil {
		return "", err
	}
	werr := dimacs.WriteGraph(gf, f.G, comment)
	if cerr := gf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	sf, err := os.Create(filepath.Join(dir, slug+".ss"))
	if err != nil {
		return "", err
	}
	werr = dimacs.WriteSources(sf, f.Sources)
	if cerr := sf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return "", werr
	}
	if len(f.Mutations) > 0 {
		data, err := json.MarshalIndent(mutSidecar{Fault: f.MutateFault, Batches: f.Mutations}, "", "  ")
		if err != nil {
			return "", err
		}
		if err := os.WriteFile(filepath.Join(dir, slug+".mut"), append(data, '\n'), 0o644); err != nil {
			return "", err
		}
	}
	return grPath, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// LoadRepro reads a repro .gr file plus its sibling .ss source file (same
// basename). Without a .ss file the sources default to {0}.
func LoadRepro(grPath string) (*LoadedRepro, error) {
	gf, err := os.Open(grPath)
	if err != nil {
		return nil, err
	}
	g, err := dimacs.ReadGraph(gf)
	gf.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %v", grPath, err)
	}
	sources := []int32{0}
	ssPath := strings.TrimSuffix(grPath, filepath.Ext(grPath)) + ".ss"
	if sf, err := os.Open(ssPath); err == nil {
		sources, err = dimacs.ReadSources(sf)
		sf.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %v", ssPath, err)
		}
	}
	for _, s := range sources {
		if int(s) >= g.NumVertices() {
			return nil, fmt.Errorf("%s: source %d out of range [0,%d)", grPath, s, g.NumVertices())
		}
	}
	rep := &LoadedRepro{Name: filepath.Base(grPath), G: g, Sources: sources}
	mutPath := strings.TrimSuffix(grPath, filepath.Ext(grPath)) + ".mut"
	if data, err := os.ReadFile(mutPath); err == nil {
		var sc mutSidecar
		if err := json.Unmarshal(data, &sc); err != nil {
			return nil, fmt.Errorf("%s: %v", mutPath, err)
		}
		rep.Mutations, rep.Fault = sc.Batches, sc.Fault
	}
	return rep, nil
}

// LoadedRepro is one replayable instance from disk. Mutations is non-nil when
// a .mut sidecar recorded a failing mutation sequence (Fault marks whether
// the planted repair bug was active).
type LoadedRepro struct {
	Name      string
	G         *graph.Graph
	Sources   []int32
	Mutations []*mutate.Batch
	Fault     bool
}

// ReplayFile re-runs the full oracle stack on one repro file. A repro with a
// .mut sidecar replays its recorded mutation sequence (under the recorded
// fault flag, so planted-bug repros reproduce) before the standard checks.
func ReplayFile(cfg Config, rt *par.Runtime, grPath string) (*Failure, error) {
	rep, err := LoadRepro(grPath)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(rep.Mutations) > 0 {
		if f := checkMutationSequence(cfg, rt, rep.Name, rep.G, rep.Sources, rep.Mutations, rep.Fault); f != nil {
			f.Seed = cfg.Seed
			return f, nil
		}
		return nil, nil
	}
	return CheckInstance(cfg, rt, rep.Name, rep.G, rep.Sources), nil
}

// ReplayDir replays every .gr file in dir (sorted, so runs are
// deterministic) and returns the first failure.
func ReplayDir(cfg Config, rt *par.Runtime, dir string) (*Failure, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".gr") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .gr files in %s", dir)
	}
	cfg = cfg.withDefaults()
	for _, path := range files {
		cfg.Logf("stress: replay %s", path)
		f, err := ReplayFile(cfg, rt, path)
		if err != nil {
			return nil, err
		}
		if f != nil {
			return f, nil
		}
	}
	return nil, nil
}
