package stress

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/graph"
)

// checkCatalog drives the graph catalog (internal/catalog) with live queries
// racing against admin churn — reloads hot-swapping generations under one
// name while another name is loaded and unloaded in a loop — and verifies
// every answer against Dijkstra on the acquired generation's own graph.
// Alternate generations carry scaled weights, so a query that ever observes
// a generation other than the one it acquired produces distances Dijkstra on
// that generation's graph cannot, and the oracle trips. An Acquire on the
// reloading name must never fail: a swap that drops a ready graph out of
// service, even briefly, is a catalog bug. Meaningful under -race like the
// other concurrency stages.
func checkCatalog(cfg Config, name string, g *graph.Graph, sources []int32) *Failure {
	n := g.NumVertices()
	fail := func(check, format string, args ...any) *Failure {
		return &Failure{Check: check, Inst: name, Detail: fmt.Sprintf(format, args...), G: g, Sources: sources}
	}

	// Generations alternate between the instance and a uniformly weight-scaled
	// copy, making cross-generation leakage observable.
	var version atomic.Int64
	loader := func() (*graph.Graph, *ch.Hierarchy, error) {
		gg := g
		if version.Add(1)%2 == 0 {
			var err error
			if gg, err = doubledWeights(g); err != nil {
				return nil, nil, err
			}
		}
		return gg, ch.BuildKruskal(gg), nil
	}
	cat := catalog.New(catalog.Config{
		Workers:      2,
		QueryWorkers: 2,
		WarmQueries:  2,
		Engine:       engine.Config{CacheEntries: 8, Solvers: cfg.Solvers},
		Logf:         func(string, ...any) {},
	})
	defer cat.Close()
	src := catalog.Source{Loader: loader}
	if err := cat.Load("main", src); err != nil {
		return fail("catalog-lifecycle", "load main: %v", err)
	}
	if err := cat.WaitReady("main", 30*time.Second); err != nil {
		return fail("catalog-lifecycle", "main never ready: %v", err)
	}

	var (
		mu    sync.Mutex
		first *Failure
	)
	report := func(f *Failure) {
		mu.Lock()
		if first == nil {
			first = f
		}
		mu.Unlock()
	}

	// verifyOn answers one query on an acquired generation and checks it
	// against Dijkstra on that generation's graph.
	ctx := context.Background()
	verifyOn := func(gen *catalog.Generation, s int32, label string) {
		res, _, err := gen.Engine.Query(ctx, engine.Request{Sources: []int32{s}})
		if err != nil {
			report(fail("catalog-query", "%s gen %d src %d: %v", label, gen.Gen, s, err))
			return
		}
		want := dijkstra.SSSP(gen.G, s)
		if v := firstDiff(res.Dist, want); v >= 0 {
			report(fail("catalog-query", "%s gen %d src %d: d[%d] = %d, want %d (stale or mixed generation)",
				label, gen.Gen, s, v, res.Dist[v], want[v]))
		}
	}

	// Queriers hammer the reloading name; Acquire must never fail there.
	stop := make(chan struct{})
	srcs := raceSources(sources[0], n)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gen, release, err := cat.Acquire("main")
				if err != nil {
					report(fail("catalog-acquire", "main acquire failed during reload churn: %v", err))
					return
				}
				verifyOn(gen, srcs[(w+i)%len(srcs)], "main")
				release()
			}
		}(w)
	}

	// Admin churn on a second name, concurrent with the queriers: load,
	// acquire-and-verify when ready, unload, repeat. Lifecycle rejections
	// (mid-build unload, not-yet-ready acquire) are expected; anything else is
	// a failure.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := cat.Load("aux", src); err != nil {
				report(fail("catalog-lifecycle", "load aux: %v", err))
				return
			}
			if err := cat.WaitReady("aux", 30*time.Second); err != nil {
				report(fail("catalog-lifecycle", "aux never ready: %v", err))
				return
			}
			gen, release, err := cat.Acquire("aux")
			if err != nil {
				report(fail("catalog-acquire", "aux ready but acquire failed: %v", err))
				return
			}
			verifyOn(gen, srcs[i%len(srcs)], "aux")
			release()
			if err := cat.Unload("aux"); err != nil {
				report(fail("catalog-lifecycle", "unload aux: %v", err))
				return
			}
			// Wait out the drain so the next Load retries from evicted.
			if err := waitState(cat, "aux", "evicted", 30*time.Second); err != nil {
				report(fail("catalog-lifecycle", "%v", err))
				return
			}
		}
	}()

	// Drive the swaps: each reload must advance the generation while the
	// queriers above keep acquiring without a single failure.
	currentGen := func() (uint64, bool) {
		gen, release, err := cat.Acquire("main")
		if err != nil {
			report(fail("catalog-acquire", "main acquire failed during swap wait: %v", err))
			return 0, false
		}
		cur := gen.Gen
		release()
		return cur, true
	}
	for i := 0; i < 3 && !failed(&mu, &first); i++ {
		before, ok := currentGen()
		if !ok {
			break
		}
		if _, err := cat.Reload("main"); err != nil {
			report(fail("catalog-lifecycle", "reload main: %v", err))
			break
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			cur, ok := currentGen()
			if !ok || cur > before {
				break
			}
			if time.Now().After(deadline) {
				report(fail("catalog-lifecycle", "reload %d never swapped (still gen %d)", i+1, cur))
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	return first
}

func failed(mu *sync.Mutex, first **Failure) bool {
	mu.Lock()
	defer mu.Unlock()
	return *first != nil
}

// waitState polls until the named graph reports the wanted lifecycle state.
func waitState(cat *catalog.Catalog, name, want string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		state := ""
		for _, gs := range cat.Status() {
			if gs.Name == name {
				state = gs.State
			}
		}
		if state == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("graph %q stuck in %q, want %q", name, state, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// doubledWeights copies the graph with every weight doubled (capped at
// graph.MaxWeight — both arcs of an edge cap identically, so symmetry
// holds). Shortest-path trees differ from the original whenever the cap
// bites unevenly across paths, and distances differ always, which is what
// makes stale-generation reads visible.
func doubledWeights(g *graph.Graph) (*graph.Graph, error) {
	offsets := append([]int64(nil), g.AdjOffsets()...)
	targets := append([]int32(nil), g.Targets()...)
	ws := g.Weights()
	weights := make([]uint32, len(ws))
	for i, w := range ws {
		w2 := w * 2
		if w2 > graph.MaxWeight {
			w2 = graph.MaxWeight
		}
		weights[i] = w2
	}
	g2, err := graph.FromCSR(offsets, targets, weights)
	if err != nil {
		return nil, errors.New("stress: doubled-weight copy invalid: " + err.Error())
	}
	return g2, nil
}
