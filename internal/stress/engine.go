package stress

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/solver"
	"repro/internal/trace"
)

// checkEngine drives the query-execution engine (internal/engine) with a
// concurrent mixed workload over one shared instance — duplicate queries
// racing into the singleflight, repeats hitting the LRU cache, explicit
// per-solver requests exercising every pooled fast path, and a batch running
// beside the live queries — and verifies every answer against Dijkstra.
// Meaningful under -race, like the other concurrency stages; it runs after
// the differential stage, so a deliberately broken injected solver trips
// that oracle first.
func checkEngine(cfg Config, name string, g *graph.Graph, sources []int32, in *solver.Instance) *Failure {
	n := g.NumVertices()
	e := engine.New(in, engine.Config{CacheEntries: 8, BatchWorkers: 2, Solvers: cfg.Solvers})
	// Every query runs traced with a deliberately tiny ring, so the tracing
	// layer shares this stage's race coverage: concurrent span recording on
	// the dedup path (followers and leader touch the same trace tree) and
	// concurrent ring writes far past its capacity.
	tracer := trace.New(trace.Config{
		SampleN: 1, RingSize: 4, SlowQuery: time.Nanosecond,
		Logf: func(string, ...any) {},
	})

	oracle := func(srcs []int32) []int64 {
		out := dijkstra.SSSP(g, srcs[0])
		for _, s := range srcs[1:] {
			for v, d := range dijkstra.SSSP(g, s) {
				if d < out[v] {
					out[v] = d
				}
			}
		}
		return out
	}

	type job struct {
		label string
		req   engine.Request
		want  []int64
	}
	var jobs []job
	add := func(label string, req engine.Request) {
		jobs = append(jobs, job{label: label, req: req, want: oracle(req.Sources)})
	}
	srcs := raceSources(sources[0], n)
	for _, s := range srcs {
		// Three copies of each query race into the dedup/cache layers.
		for c := 0; c < 3; c++ {
			add(fmt.Sprintf("auto(src=%d)", s), engine.Request{Sources: []int32{s}})
		}
	}
	for _, s := range cfg.Solvers {
		if s.Applicable(g) {
			add("explicit("+s.Name+")",
				engine.Request{Sources: []int32{sources[0]}, Solver: s.Name})
		}
	}
	if len(sources) > 1 {
		add(fmt.Sprintf("multi(%v)", sources), engine.Request{Sources: sources})
	}

	fail := func(check, format string, args ...any) *Failure {
		return &Failure{Check: check, Inst: name, Detail: fmt.Sprintf(format, args...), G: g, Sources: sources}
	}
	var (
		mu    sync.Mutex
		first *Failure
	)
	report := func(f *Failure) {
		mu.Lock()
		if first == nil {
			first = f
		}
		mu.Unlock()
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			tr := tracer.StartRequest("", "stress")
			res, _, err := e.Query(trace.NewContext(ctx, tr), j.req)
			tracer.Finish(tr, 200)
			if err != nil {
				report(fail("engine-mixed", "%s: %v", j.label, err))
				return
			}
			if v := firstDiff(res.Dist, j.want); v >= 0 {
				report(fail("engine-mixed", "%s: d[%d] = %d, want %d", j.label, v, res.Dist[v], j.want[v]))
			}
		}(j)
	}
	// One batch runs beside the live queries, sharing cache and flights.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := make([]engine.Request, len(jobs))
		for i, j := range jobs {
			reqs[i] = j.req
		}
		tr := tracer.StartRequest("", "stress-batch")
		results := e.Batch(trace.NewContext(ctx, tr), reqs)
		tracer.Finish(tr, 200)
		for i, br := range results {
			if br.Err != nil {
				report(fail("engine-mixed", "batch %s: %v", jobs[i].label, br.Err))
				continue
			}
			if v := firstDiff(br.Res.Dist, jobs[i].want); v >= 0 {
				report(fail("engine-mixed", "batch %s: d[%d] = %d, want %d",
					jobs[i].label, v, br.Res.Dist[v], jobs[i].want[v]))
			}
		}
	}()
	wg.Wait()
	if first != nil {
		return first
	}
	// Structural invariant of the trace ring: concurrent writers overflowed a
	// 4-slot ring many times over, yet retention never exceeds the bound.
	if held := tracer.Retained(); held > 4 {
		return fail("engine-trace", "trace ring holds %d entries, bound is 4", held)
	}
	if started := tracer.Counter("traces_started"); started != int64(len(jobs))+1 {
		return fail("engine-trace", "traces_started = %d, want %d", started, len(jobs)+1)
	}
	return first
}
