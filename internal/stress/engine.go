package stress

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/solver"
)

// checkEngine drives the query-execution engine (internal/engine) with a
// concurrent mixed workload over one shared instance — duplicate queries
// racing into the singleflight, repeats hitting the LRU cache, explicit
// per-solver requests exercising every pooled fast path, and a batch running
// beside the live queries — and verifies every answer against Dijkstra.
// Meaningful under -race, like the other concurrency stages; it runs after
// the differential stage, so a deliberately broken injected solver trips
// that oracle first.
func checkEngine(cfg Config, name string, g *graph.Graph, sources []int32, in *solver.Instance) *Failure {
	n := g.NumVertices()
	e := engine.New(in, engine.Config{CacheEntries: 8, BatchWorkers: 2, Solvers: cfg.Solvers})

	oracle := func(srcs []int32) []int64 {
		out := dijkstra.SSSP(g, srcs[0])
		for _, s := range srcs[1:] {
			for v, d := range dijkstra.SSSP(g, s) {
				if d < out[v] {
					out[v] = d
				}
			}
		}
		return out
	}

	type job struct {
		label string
		req   engine.Request
		want  []int64
	}
	var jobs []job
	add := func(label string, req engine.Request) {
		jobs = append(jobs, job{label: label, req: req, want: oracle(req.Sources)})
	}
	srcs := raceSources(sources[0], n)
	for _, s := range srcs {
		// Three copies of each query race into the dedup/cache layers.
		for c := 0; c < 3; c++ {
			add(fmt.Sprintf("auto(src=%d)", s), engine.Request{Sources: []int32{s}})
		}
	}
	for _, s := range cfg.Solvers {
		if s.Applicable(g) {
			add("explicit("+s.Name+")",
				engine.Request{Sources: []int32{sources[0]}, Solver: s.Name})
		}
	}
	if len(sources) > 1 {
		add(fmt.Sprintf("multi(%v)", sources), engine.Request{Sources: sources})
	}

	fail := func(check, format string, args ...any) *Failure {
		return &Failure{Check: check, Inst: name, Detail: fmt.Sprintf(format, args...), G: g, Sources: sources}
	}
	var (
		mu    sync.Mutex
		first *Failure
	)
	report := func(f *Failure) {
		mu.Lock()
		if first == nil {
			first = f
		}
		mu.Unlock()
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			res, _, err := e.Query(ctx, j.req)
			if err != nil {
				report(fail("engine-mixed", "%s: %v", j.label, err))
				return
			}
			if v := firstDiff(res.Dist, j.want); v >= 0 {
				report(fail("engine-mixed", "%s: d[%d] = %d, want %d", j.label, v, res.Dist[v], j.want[v]))
			}
		}(j)
	}
	// One batch runs beside the live queries, sharing cache and flights.
	wg.Add(1)
	go func() {
		defer wg.Done()
		reqs := make([]engine.Request, len(jobs))
		for i, j := range jobs {
			reqs[i] = j.req
		}
		for i, br := range e.Batch(ctx, reqs) {
			if br.Err != nil {
				report(fail("engine-mixed", "batch %s: %v", jobs[i].label, br.Err))
				continue
			}
			if v := firstDiff(br.Res.Dist, jobs[i].want); v >= 0 {
				report(fail("engine-mixed", "batch %s: d[%d] = %d, want %d",
					jobs[i].label, v, br.Res.Dist[v], jobs[i].want[v]))
			}
		}
	}()
	wg.Wait()
	return first
}
