package stress

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/par"
	"repro/internal/rng"
)

// checkMutate is the dynamic-graph oracle: a deterministic random mutation
// sequence (weight changes, inserts, deletes) is driven through the
// production incremental path — copy-on-write overlay plus hierarchy repair,
// with the fallback full-rebuild path forced periodically — and the end state
// is differenced against an implementation-disjoint replay
// (mutate.ReferenceApply) of the same batches onto a fresh copy of the base
// graph: edge multisets must match exactly, and Thorup queries over the
// repaired hierarchy must agree with Dijkstra on the replayed graph.
func checkMutate(cfg Config, rt *par.Runtime, name string, g *graph.Graph, sources []int32) *Failure {
	if cfg.MutateRounds < 0 || g.NumVertices() < 2 || len(sources) == 0 {
		return nil
	}
	seed := cfg.Seed ^ uint64(g.NumVertices())<<32 ^ uint64(g.NumEdges())<<8 ^ uint64(sources[0])
	batches := genMutationSequence(g, cfg.MutateRounds, seed)
	if len(batches) == 0 {
		return nil
	}
	return checkMutationSequence(cfg, rt, name, g, sources, batches, cfg.MutateFault)
}

// genMutationSequence derives a valid batch sequence from the seed: each
// batch is generated against (and validated on) the graph state left by its
// predecessors.
func genMutationSequence(base *graph.Graph, rounds int, seed uint64) []*mutate.Batch {
	r := rng.New(seed)
	cur := base
	var batches []*mutate.Batch
	for i := 0; i < rounds; i++ {
		b := randomValidBatch(cur, r)
		if b == nil {
			break
		}
		next, _, err := mutate.Apply(cur, b)
		if err != nil {
			break // generator guard; a valid batch cannot fail to apply
		}
		batches = append(batches, b)
		cur = next
	}
	return batches
}

// randomValidBatch builds one small batch of ops valid against g: weight
// changes and deletes on existing edges, inserts anywhere (parallel edges and
// self-loops are legal), at most one op per (u,v) slot.
func randomValidBatch(g *graph.Graph, r *rng.Xoshiro256) *mutate.Batch {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	edges := g.Edges()
	k := 1 + r.Intn(4)
	seen := make(map[[2]int32]bool, k)
	var ops []mutate.Op
	for attempts := 0; len(ops) < k && attempts < 16*k; attempts++ {
		var op mutate.Op
		switch choice := r.Intn(3); {
		case choice == 0 && len(edges) > 0:
			e := edges[r.Intn(len(edges))]
			op = mutate.Op{Op: mutate.OpSetWeight, U: e.U, V: e.V, W: uint32(1 + r.Intn(1<<10))}
		case choice == 1 && len(edges) > 0:
			e := edges[r.Intn(len(edges))]
			op = mutate.Op{Op: mutate.OpDelete, U: e.U, V: e.V}
		default:
			op = mutate.Op{Op: mutate.OpInsert, U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: uint32(1 + r.Intn(1<<10))}
		}
		u, v := op.U, op.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil
	}
	b := &mutate.Batch{Ops: ops}
	if err := b.Validate(g); err != nil {
		return nil
	}
	return b
}

// checkMutationSequence replays the batch sequence through the production
// mutation machinery and diffs the result against the reference replay. A
// sequence that fails validation mid-replay returns nil — that marks an
// invalid shrink candidate, not a bug (the sweep only generates valid
// sequences). fault plants the repair bug (mutate.Options.InjectFault) on
// every incremental batch; the oracle must catch it.
func checkMutationSequence(cfg Config, rt *par.Runtime, name string, base *graph.Graph, sources []int32, batches []*mutate.Batch, fault bool) *Failure {
	fail := func(check, format string, args ...any) *Failure {
		return &Failure{Check: check, Inst: name, Detail: fmt.Sprintf(format, args...),
			G: base, Sources: sources, Mutations: batches, MutateFault: fault}
	}
	cur := base
	h := ch.BuildKruskal(base)
	for i, b := range batches {
		threshold := 1.0
		if i%3 == 2 {
			threshold = -1 // periodically force the fallback full-rebuild path
		}
		res, err := mutate.Mutate(cur, h, b, mutate.Options{Threshold: threshold, InjectFault: fault})
		if err != nil {
			if errors.Is(err, mutate.ErrInvalid) {
				return nil
			}
			return fail("mutate-internal", "batch %d/%d: %v", i+1, len(batches), err)
		}
		if res.Fallback {
			// What the background rebuild replays (source + delta log).
			g2, _, err := mutate.Apply(cur, b)
			if err != nil {
				if errors.Is(err, mutate.ErrInvalid) {
					return nil
				}
				return fail("mutate-internal", "fallback batch %d/%d: %v", i+1, len(batches), err)
			}
			cur, h = g2, ch.BuildKruskal(g2)
			continue
		}
		if err := res.H.Validate(); err != nil {
			return fail("mutate-ch-validate", "batch %d/%d: %v", i+1, len(batches), err)
		}
		cur, h = res.G, res.H
	}

	ref, err := mutate.ReferenceApply(base, batches...)
	if err != nil {
		return nil // invalid candidate sequence
	}
	if err := cur.Validate(); err != nil {
		return fail("mutate-graph-validate", "after %d batches: %v", len(batches), err)
	}
	if diff := edgeMultisetDiff(cur, ref); diff != "" {
		return fail("mutate-oracle-edges", "after %d batches: %s", len(batches), diff)
	}
	// Thorup queries over the repaired hierarchy vs Dijkstra on the
	// independently replayed graph.
	res := core.NewSolver(h, rt).RunMany(sources)
	for i, s := range sources {
		want := dijkstra.SSSP(ref, s)
		if v := firstDiff(res[i], want); v >= 0 {
			return fail("mutate-oracle", "after %d batches, src %d: d[%d] = %d, replayed reference %d",
				len(batches), s, v, res[i][v], want[v])
		}
	}
	return nil
}

// edgeMultisetDiff compares two graphs' undirected edge multisets (endpoint
// order normalized); it returns "" when identical.
func edgeMultisetDiff(a, b *graph.Graph) string {
	ea, eb := normalizedEdges(a), normalizedEdges(b)
	if len(ea) != len(eb) {
		return fmt.Sprintf("%d edges vs %d in the reference replay", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return fmt.Sprintf("edge %d: (%d,%d,w=%d) vs reference (%d,%d,w=%d)",
				i, ea[i].U, ea[i].V, ea[i].W, eb[i].U, eb[i].V, eb[i].W)
		}
	}
	return ""
}

func normalizedEdges(g *graph.Graph) []graph.Edge {
	es := g.Edges()
	out := make([]graph.Edge, len(es))
	for i, e := range es {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out[i] = e
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		if out[i].V != out[j].V {
			return out[i].V < out[j].V
		}
		return out[i].W < out[j].W
	})
	return out
}

// ShrinkMutations minimizes a failing mutation sequence with a ddmin loop:
// drop whole batches coarse-to-fine, then individual ops, while the property
// keeps holding. Candidates that become invalid mid-replay are simply
// rejected by the property (checkMutationSequence returns nil on them).
func ShrinkMutations(batches []*mutate.Batch, keep func([]*mutate.Batch) bool) []*mutate.Batch {
	budget := shrinkBudget
	try := func(cand []*mutate.Batch) bool {
		if budget <= 0 || len(cand) == 0 {
			return false
		}
		budget--
		return keep(cand)
	}
	cur := batches
	for chunks := 2; len(cur) >= 2 && chunks <= len(cur) && budget > 0; {
		size := (len(cur) + chunks - 1) / chunks
		removed := false
		for at := 0; at < len(cur); at += size {
			end := min(at+size, len(cur))
			cand := append(append([]*mutate.Batch{}, cur[:at]...), cur[end:]...)
			if try(cand) {
				cur = cand
				removed = true
				break
			}
		}
		if removed {
			chunks = 2
		} else {
			chunks *= 2
		}
	}
	for changed := true; changed && budget > 0; {
		changed = false
		for bi := 0; bi < len(cur) && !changed; bi++ {
			ops := cur[bi].Ops
			if len(cur) == 1 && len(ops) == 1 {
				break // already minimal
			}
			for oi := 0; oi < len(ops); oi++ {
				cand := make([]*mutate.Batch, 0, len(cur))
				for j, b := range cur {
					if j != bi {
						cand = append(cand, b)
						continue
					}
					rest := append(append([]mutate.Op{}, ops[:oi]...), ops[oi+1:]...)
					if len(rest) > 0 {
						cand = append(cand, &mutate.Batch{Ops: rest})
					}
				}
				if len(cand) > 0 && try(cand) {
					cur = cand
					changed = true
					break
				}
			}
		}
	}
	return cur
}

// shrinkMutationSequence minimizes a mutation failure's batch sequence on its
// (already graph-shrunk) witness instance.
func shrinkMutationSequence(cfg Config, rt *par.Runtime, f *Failure) *Failure {
	keep := func(cand []*mutate.Batch) bool {
		f2 := checkMutationSequence(cfg, rt, "shrink-seq", f.G, f.Sources, cand, f.MutateFault)
		return f2 != nil && f2.Check == f.Check
	}
	shrunk := ShrinkMutations(f.Mutations, keep)
	f2 := checkMutationSequence(cfg, rt, f.Inst, f.G, f.Sources, shrunk, f.MutateFault)
	if f2 == nil {
		return f // never trade a real failure for a nil one
	}
	f2.Seed = f.Seed
	return f2
}
