package stress

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Spec describes one generated stress instance. Specs are plain values so a
// failure can always be re-derived from its textual form plus the seed.
type Spec struct {
	Family string // rand | rmat | grid | geom | smallworld | star | disconnected
	N      int
	C      uint32 // maximum edge weight; 1 means unit weights (BFS joins the pool)
	PWD    bool
	Seed   uint64
}

// Name renders the spec in the paper-adjacent naming convention.
func (sp Spec) Name() string {
	dist := "UWD"
	if sp.PWD {
		dist = "PWD"
	}
	return fmt.Sprintf("%s-%s-n%d-C%d-seed%d", sp.Family, dist, sp.N, sp.C, sp.Seed)
}

func (sp Spec) dist() gen.WeightDist {
	if sp.PWD {
		return gen.PWD
	}
	return gen.UWD
}

// Generate builds the spec's graph.
func (sp Spec) Generate() *graph.Graph {
	n := sp.N
	switch sp.Family {
	case "rand":
		return gen.Random(n, 4*n, sp.C, sp.dist(), sp.Seed)
	case "rmat":
		return gen.RMATGraph(n, 4*n, sp.C, sp.dist(), sp.Seed)
	case "grid":
		side := 1
		for (side+1)*(side+1) <= n {
			side++
		}
		return gen.GridGraph(side, side, sp.C, sp.dist(), sp.Seed)
	case "geom":
		return gen.Geometric(n, 0.15, sp.C, sp.Seed)
	case "smallworld":
		return gen.SmallWorld(n, 3, 0.1, sp.C, sp.dist(), sp.Seed)
	case "star":
		return gen.Star(n, sp.C)
	case "disconnected":
		// Two independent Random blocks with no crossing edges: exercises
		// Inf labels, the CH virtual root, and all-or-nothing settling.
		k := n / 2
		if k < 2 {
			k = 2
		}
		if n-k < 2 {
			n = k + 2
		}
		ga := gen.Random(k, 4*k, sp.C, sp.dist(), sp.Seed)
		gb := gen.Random(n-k, 4*(n-k), sp.C, sp.dist(), sp.Seed+1)
		b := graph.NewBuilder(n)
		for _, e := range ga.Edges() {
			b.MustAddEdge(e.U, e.V, e.W)
		}
		off := int32(k)
		for _, e := range gb.Edges() {
			b.MustAddEdge(e.U+off, e.V+off, e.W)
		}
		return b.Build()
	default:
		panic("stress: unknown family " + sp.Family)
	}
}

// Sweep returns the deterministic instance list for one round: every family
// in internal/gen crossed with small/large C and both weight distributions,
// sized below maxN. The same (seed, maxN) always yields the same sweep.
func Sweep(seed uint64, maxN int) []Spec {
	if maxN < 16 {
		maxN = 16
	}
	r := rng.New(seed)
	size := func() int { return maxN/2 + r.Intn(maxN/2) + 4 }
	sub := func() uint64 { return r.Uint64() }
	return []Spec{
		{Family: "rand", N: size(), C: 4, Seed: sub()},                       // small C
		{Family: "rand", N: size(), C: 1 << 12, PWD: true, Seed: sub()},      // large C, poly-log
		{Family: "rand", N: size(), C: 1, Seed: sub()},                       // unit weights: BFS joins
		{Family: "rmat", N: size(), C: 1 << 8, Seed: sub()},                  // scale-free
		{Family: "rmat", N: size(), C: 1 << 10, PWD: true, Seed: sub()},      // scale-free, poly-log
		{Family: "grid", N: size(), C: 16, Seed: sub()},                      // road-like
		{Family: "grid", N: size(), C: 1, Seed: sub()},                       // unit grid: BFS joins
		{Family: "geom", N: size(), C: 64, Seed: sub()},                      // spatial
		{Family: "smallworld", N: size(), C: 1 << 8, PWD: true, Seed: sub()}, // lattice+rewire
		{Family: "star", N: size(), C: 9, Seed: sub()},                       // hub contention
		{Family: "disconnected", N: size(), C: 1 << 6, Seed: sub()},          // Inf handling
		{Family: "rand", N: 2 + r.Intn(6), C: 4, Seed: sub()},                // tiny degenerate
	}
}
