package core

import (
	"fmt"

	"repro/internal/graph"
)

// CheckInvariants verifies the query's internal state against the Component
// Hierarchy after a completed Run/RunFromSources. It is an invariant hook for
// differential harnesses (internal/stress): a traversal bug that happens to
// produce plausible distances still tends to leave the bookkeeping arrays
// inconsistent, and this check catches it without a reference solver.
//
// Checked post-run invariants:
//
//  1. Distances are in [0, Inf] and every leaf's settled flag matches its
//     distance: unsettled == 0 iff the vertex was reached (dist < Inf).
//  2. Every leaf's minD is parked at Inf — settling stores Inf, and a leaf
//     that was never reached was never lowered.
//  3. For every internal node, unsettled equals the number of unreachable
//     leaves in its subtree (the counters drained exactly once per settle).
//  4. Components settle all-or-nothing: a real (non-virtual-root) CH node is
//     internally connected, so after a run its unsettled count is either 0
//     or its full vertex count. A node that was never touched (fully
//     unreachable) must still have minD == Inf.
//
// minD of settled internal nodes is deliberately unconstrained: the visit
// loop exits on unsettled == 0 without a final refresh, so a stale finite
// value there is normal.
func (q *Query) CheckInvariants() error {
	h := q.s.h
	n := h.NumLeaves()
	if n == 0 {
		return nil
	}
	nodes := h.NumNodes()
	infUnder := make([]int32, nodes)
	for v := 0; v < n; v++ {
		d := q.dist[v]
		if d < 0 || d > graph.Inf {
			return fmt.Errorf("core: invariant: dist[%d] = %d out of [0, Inf]", v, d)
		}
		settled := q.unsettled[v] == 0
		if settled == (d == graph.Inf) {
			return fmt.Errorf("core: invariant: leaf %d has dist %d but unsettled %d", v, d, q.unsettled[v])
		}
		if q.minD[v] != graph.Inf {
			return fmt.Errorf("core: invariant: leaf %d minD %d not parked at Inf", v, q.minD[v])
		}
		if d == graph.Inf {
			for x := int32(v); x >= 0; x = h.Parent(x) {
				infUnder[x]++
			}
		}
	}
	for x := int32(0); x < int32(nodes); x++ {
		if h.IsLeaf(x) {
			continue
		}
		us := q.unsettled[x]
		if us != infUnder[x] {
			return fmt.Errorf("core: invariant: node %d unsettled %d, but %d unreachable leaves beneath it",
				x, us, infUnder[x])
		}
		virtual := h.HasVirtualRoot() && x == h.Root()
		if !virtual && us != 0 && us != h.VertexCount(x) {
			return fmt.Errorf("core: invariant: component %d settled partially (%d of %d unsettled)",
				x, us, h.VertexCount(x))
		}
		if us == h.VertexCount(x) && q.minD[x] != graph.Inf {
			return fmt.Errorf("core: invariant: untouched node %d has minD %d", x, q.minD[x])
		}
	}
	return nil
}
