// Package core implements the paper's primary contribution: a multithreaded
// version of Thorup's linear-time single-source shortest path algorithm for
// undirected graphs with positive integer weights, driven by the Component
// Hierarchy of internal/ch.
//
// # Algorithm
//
// Thorup's insight (his Lemma, restated as Lemma 1 in the paper) is that if
// the vertex set splits into components whose crossing edges all weigh at
// least delta = 2^(i-1), then any vertex v minimising d(v) within a component
// whose minimum lies within delta of the global minimum is already settled
// (d(v) = delta(v)) and may be visited in any order — in particular, in
// parallel. The Component Hierarchy organises exactly these components: a
// node at level i buckets its children by minD(child) >> (i-1), and all
// children in the lowest occupied bucket can be visited concurrently,
// recursively, until leaves are reached and settled.
//
// # Parallel implementation (paper §3.2, §3.3)
//
//   - d and minD are maintained with atomic CAS-min; a successful relaxation
//     propagates its value from the leaf toward the root, stopping early at
//     the first ancestor that is already low enough (the paper locks minD
//     and observes values are "not propagated very far up the CH in
//     practice" — the early stop is the same phenomenon).
//   - Buckets are virtual: no bucket lists exist. A node's current bucket is
//     minD >> shift and membership is discovered by scanning its children —
//     the paper's Figure 3 loop. Insertion is therefore a single store and
//     needs no concurrent data structure.
//   - minD increases (bucket advances) are performed only by the node's
//     visitor at quiescent points, with a rescan after each raise to close
//     the race against concurrent CAS-min decreases.
//   - The toVisit set is built by one of two strategies: Naive always runs
//     the scan as an all-processor loop (the paper's "Thorup A"), Selective
//     picks serial / single-processor / all-processors from the child count
//     (the paper's "Thorup B", its §3.3 contribution, ~2x in Table 6).
//
// A Solver wraps one Component Hierarchy and hands out independent Query
// objects; any number of queries may run concurrently against the shared
// hierarchy (the paper's Figure 5 experiment and its motivating use case).
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package core
