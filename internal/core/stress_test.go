package core

import (
	"testing"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/par"
)

// Heavy randomized stress across 300 seeds and larger exec worker counts.
func TestStressExecParallel(t *testing.T) {
	rt := par.NewExec(8)
	for seed := uint64(0); seed < 300; seed++ {
		n := int(seed%500) + 2
		c := uint32(1) << (seed%20 + 1)
		dist := gen.UWD
		if seed%3 == 0 {
			dist = gen.PWD
		}
		g := gen.Random(n, 4*n, c, dist, seed)
		h := ch.BuildKruskal(g)
		s := NewSolver(h, rt)
		src := int32(seed) % int32(n)
		want := dijkstra.SSSP(g, src)
		got := s.SSSP(src)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("seed %d n %d src %d: d[%d]=%d want %d", seed, n, src, v, got[v], want[v])
			}
		}
	}
}

// Many concurrent queries over one shared hierarchy, exercising the
// Figure 5 code path under the race detector.
func TestStressSharedCHConcurrentQueries(t *testing.T) {
	g := gen.Random(800, 3200, 1<<10, gen.UWD, 777)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewExec(8))
	sources := make([]int32, 16)
	for i := range sources {
		sources[i] = int32(i * 50)
	}
	res := s.RunMany(sources)
	for i, src := range sources {
		want := dijkstra.SSSP(g, src)
		for v := range want {
			if res[i][v] != want[v] {
				t.Fatalf("query %d src %d: d[%d]=%d want %d", i, src, v, res[i][v], want[v])
			}
		}
	}
}
