package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

func sameDists(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ccBullyKernel adapts the bully kernel to the BuildNaive signature.
var ccBullyKernel ch.CCKernel = cc.Bully

// solverVariants returns every Thorup configuration under test.
func solverVariants(h *ch.Hierarchy) map[string]func(src int32) []int64 {
	variants := map[string]func(src int32) []int64{
		"serial":          func(src int32) []int64 { return SerialSSSP(h, src) },
		"serial-physical": func(src int32) []int64 { return SerialSSSPPhysical(h, src) },
	}
	for _, cfg := range []struct {
		name string
		rt   *par.Runtime
		st   Strategy
	}{
		{"exec1-selective", par.NewExec(1), Selective},
		{"exec4-selective", par.NewExec(4), Selective},
		{"exec4-naive", par.NewExec(4), Naive},
		{"sim-selective", par.NewSim(mta.MTA2(40)), Selective},
		{"sim-naive", par.NewSim(mta.MTA2(40)), Naive},
	} {
		s := NewSolver(h, cfg.rt, WithStrategy(cfg.st))
		variants[cfg.name] = s.SSSP
	}
	return variants
}

func checkAll(t *testing.T, g *graph.Graph, sources []int32) {
	t.Helper()
	h := ch.BuildKruskal(g)
	if err := h.Validate(); err != nil {
		t.Fatalf("hierarchy invalid: %v", err)
	}
	for _, src := range sources {
		want := dijkstra.SSSP(g, src)
		for name, run := range solverVariants(h) {
			if got := run(src); !sameDists(got, want) {
				t.Errorf("%s src=%d: mismatch vs Dijkstra", name, src)
			}
		}
	}
}

func TestPath(t *testing.T) {
	checkAll(t, gen.Path(10, 3), []int32{0, 5, 9})
}

func TestPowerOfTwoWeights(t *testing.T) {
	b := graph.NewBuilder(5)
	for i, w := range []uint32{1, 2, 4, 8} {
		b.MustAddEdge(int32(i), int32(i+1), w)
	}
	checkAll(t, b.Build(), []int32{0, 2, 4})
}

func TestSingleVertex(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	h := ch.BuildKruskal(g)
	for name, run := range solverVariants(h) {
		if d := run(0); d[0] != 0 {
			t.Errorf("%s: d[0]=%d", name, d[0])
		}
	}
}

func TestDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(1, 2, 3)
	b.MustAddEdge(3, 4, 1) // 5 isolated
	checkAll(t, b.Build(), []int32{0, 3, 5})
}

func TestSelfLoopsAndParallelEdges(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 0, 5)
	b.MustAddEdge(0, 1, 9)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(1, 2, 1)
	checkAll(t, b.Build(), []int32{0, 2})
}

func TestUniformWeightOne(t *testing.T) {
	// All weights 1: the hierarchy is a single flat root and Thorup
	// degenerates to parallel BFS.
	checkAll(t, gen.Cycle(64, 1), []int32{0, 31})
}

func TestSmallCFamilies(t *testing.T) {
	checkAll(t, gen.Random(400, 1600, 4, gen.UWD, 1), []int32{0, 200})
}

func TestLargeCFamilies(t *testing.T) {
	checkAll(t, gen.Random(400, 1600, 1<<20, gen.UWD, 2), []int32{0, 399})
}

func TestPWDFamilies(t *testing.T) {
	checkAll(t, gen.Random(400, 1600, 1<<16, gen.PWD, 3), []int32{7})
}

func TestRMATFamilies(t *testing.T) {
	checkAll(t, gen.RMATGraph(512, 2048, 1<<10, gen.UWD, 4), []int32{0, 100})
}

func TestGridRoadLike(t *testing.T) {
	checkAll(t, gen.GridGraph(20, 25, 64, gen.UWD, 5), []int32{0, 499})
}

func TestStarHighDegree(t *testing.T) {
	checkAll(t, gen.Star(500, 7), []int32{0, 499})
}

func TestQueryReuse(t *testing.T) {
	g := gen.Random(300, 1200, 1<<10, gen.UWD, 6)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewExec(4))
	q := s.Query()
	for _, src := range []int32{0, 100, 200, 0} {
		want := dijkstra.SSSP(g, src)
		if got := q.Run(src); !sameDists(got, want) {
			t.Fatalf("reused query wrong for src %d", src)
		}
	}
}

func TestSourceOutOfRangePanics(t *testing.T) {
	h := ch.BuildKruskal(gen.Path(3, 1))
	s := NewSolver(h, par.NewExec(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range source")
		}
	}()
	s.SSSP(99)
}

func TestInstanceBytesSmallerThanGraph(t *testing.T) {
	g := gen.Random(2000, 8000, 1<<10, gen.UWD, 7)
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(1)).Query()
	if q.InstanceBytes() <= 0 {
		t.Fatal("non-positive instance size")
	}
	// The paper's §5.2 point: a query instance is cheaper than copying the
	// graph (which repeated delta-stepping would need for parallel runs).
	if q.InstanceBytes() >= g.MemoryBytes() {
		t.Fatalf("instance %d bytes not below graph %d bytes", q.InstanceBytes(), g.MemoryBytes())
	}
}

func TestRunManyExec(t *testing.T) {
	g := gen.Random(500, 2000, 1<<12, gen.UWD, 8)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewExec(4))
	sources := []int32{0, 17, 123, 499, 17}
	res := s.RunMany(sources)
	for i, src := range sources {
		if !sameDists(res[i], dijkstra.SSSP(g, src)) {
			t.Errorf("simultaneous query %d (src %d) wrong", i, src)
		}
	}
}

func TestRunManySim(t *testing.T) {
	g := gen.Random(200, 800, 1<<8, gen.UWD, 9)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewSim(mta.MTA2(8)))
	res := s.RunMany([]int32{0, 50})
	for i, src := range []int32{0, 50} {
		if !sameDists(res[i], dijkstra.SSSP(g, src)) {
			t.Errorf("sim simultaneous query %d wrong", i)
		}
	}
}

func TestSimultaneousCostScalesSublinearly(t *testing.T) {
	g := gen.Random(1<<10, 1<<12, 1<<10, gen.UWD, 10)
	h := ch.BuildKruskal(g)
	m := mta.MTA2(40)
	one, _ := SimultaneousCost(h, m, []int32{0})
	sources := make([]int32, 8)
	for i := range sources {
		sources[i] = int32(i * 100)
	}
	eight, _ := SimultaneousCost(h, m, sources)
	if eight >= 8*one {
		t.Fatalf("8 simultaneous queries cost %d, not below 8x single %d", eight, 8*one)
	}
	if eight < one {
		t.Fatalf("8 queries cheaper than 1: %d < %d", eight, one)
	}
}

func TestTuneThresholds(t *testing.T) {
	th := TuneThresholds(mta.MTA2(40))
	if th.Single < 2 {
		t.Errorf("single threshold %d too low: trivial loops must stay serial", th.Single)
	}
	if th.Multi < th.Single {
		t.Errorf("thresholds out of order: %+v", th)
	}
	// On a single-processor machine, multi-processor loops have the same
	// lane count but a higher fork cost than single-processor ones, so the
	// tuner should effectively never choose them.
	th1 := TuneThresholds(mta.MTA2(1))
	if th1.Multi <= th1.Single {
		t.Errorf("1-proc machine: multi threshold %d should exceed single %d", th1.Multi, th1.Single)
	}
}

func TestSelectiveCheaperThanNaiveSim(t *testing.T) {
	// The Table 6 effect: on the simulated machine, the selective strategy's
	// total span must beat the naive all-processors strategy.
	g := gen.Random(1<<12, 1<<14, 1<<12, gen.UWD, 11)
	h := ch.BuildKruskal(g)
	m := mta.MTA2(40)

	span := func(st Strategy) int64 {
		rt := par.NewSim(m)
		NewSolver(h, rt, WithStrategy(st)).SSSP(0)
		return rt.SimCost().Span
	}
	naive, selective := span(Naive), span(Selective)
	if selective >= naive {
		t.Fatalf("selective span %d not below naive %d", selective, naive)
	}
}

// Property: all variants match Dijkstra on random multigraphs across weight
// regimes and sources.
func TestQuickAllVariantsMatchDijkstra(t *testing.T) {
	f := func(seed uint32, pwd, smallC bool) bool {
		n := int(seed%100) + 1
		dist := gen.UWD
		if pwd {
			dist = gen.PWD
		}
		c := uint32(1 << 14)
		if smallC {
			c = 4
		}
		g := gen.Random(n, 4*n, c, dist, uint64(seed))
		h := ch.BuildKruskal(g)
		src := int32(seed % uint32(n))
		want := dijkstra.SSSP(g, src)
		for _, run := range solverVariants(h) {
			if !sameDists(run(src), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkThorupSerial(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	h := ch.BuildKruskal(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SerialSSSP(h, 0)
	}
}

func BenchmarkThorupParallelExec(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewExec(4))
	q := s.Query()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Run(0)
	}
}

// Solver.InstanceBytes (hierarchy arithmetic, what /stats reports) must agree
// with the footprint of an actually-allocated Query.
func TestInstanceBytesArithmetic(t *testing.T) {
	g := gen.Random(700, 2800, 1<<10, gen.UWD, 17)
	s := NewSolver(ch.BuildKruskal(g), par.NewExec(2))
	if got, want := s.InstanceBytes(), s.Query().InstanceBytes(); got != want {
		t.Fatalf("Solver.InstanceBytes=%d, Query.InstanceBytes=%d", got, want)
	}
}

// The solver must work over any of the three hierarchy constructions.
func TestSolverOverAllConstructions(t *testing.T) {
	g := gen.Random(500, 2000, 1<<10, gen.PWD, 21)
	want := dijkstra.SSSP(g, 7)
	rt := par.NewExec(4)
	for name, h := range map[string]*ch.Hierarchy{
		"kruskal": ch.BuildKruskal(g),
		"naive":   ch.BuildNaive(rt, g, ccBullyKernel),
		"mst":     ch.BuildMST(rt, g),
	} {
		if got := NewSolver(h, rt).SSSP(7); !sameDists(got, want) {
			t.Errorf("%s hierarchy: wrong distances", name)
		}
		if got := SerialSSSP(h, 7); !sameDists(got, want) {
			t.Errorf("%s hierarchy (serial): wrong distances", name)
		}
	}
}

// Thorup on the new generator families.
func TestSpatialFamilies(t *testing.T) {
	checkAll(t, gen.Geometric(800, 0.06, 64, 31), []int32{0, 400})
	checkAll(t, gen.SmallWorld(600, 2, 0.1, 128, gen.UWD, 32), []int32{0, 300})
}
