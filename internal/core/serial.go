package core

import (
	"repro/internal/ch"
	"repro/internal/graph"
)

// SerialSSSP is a straightforward single-threaded implementation of Thorup's
// algorithm over the Component Hierarchy, written independently of the
// parallel solver: no atomics, recursion plus the virtual-bucket child scan.
// It is the configuration measured in the paper's Table 1 (sequential Thorup
// vs the DIMACS reference solver) and a differential-testing partner for the
// parallel solver.
func SerialSSSP(h *ch.Hierarchy, src int32) []int64 {
	return SerialSSSPFromSources(h, []int32{src})
}

// SerialSSSPFromSources is the multi-source variant of SerialSSSP: it returns
// each vertex's distance to the nearest source.
func SerialSSSPFromSources(h *ch.Hierarchy, sources []int32) []int64 {
	n := h.NumLeaves()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	st := &serialState{
		h:         h,
		g:         h.Graph(),
		dist:      dist,
		minD:      make([]int64, h.NumNodes()),
		unsettled: make([]int32, h.NumNodes()),
	}
	for i := range st.minD {
		st.minD[i] = graph.Inf
		st.unsettled[i] = h.VertexCount(int32(i))
	}
	for _, src := range sources {
		dist[src] = 0
		for x := src; x >= 0; x = h.Parent(x) {
			st.minD[x] = 0
		}
	}
	st.visit(h.Root(), graph.Inf)
	return dist
}

type serialState struct {
	h         *ch.Hierarchy
	g         *graph.Graph
	dist      []int64
	minD      []int64
	unsettled []int32
	toVisit   [][]int32 // scratch per recursion depth
}

func (st *serialState) visit(c int32, bound int64) {
	h := st.h
	if h.IsLeaf(c) {
		st.settle(c)
		return
	}
	shift := h.Shift(c)
	children := h.Children(c)
	depth := len(st.toVisit)
	st.toVisit = append(st.toVisit, nil)
	for st.unsettled[c] > 0 {
		m := st.minD[c]
		if m >= bound {
			break
		}
		j := m >> shift
		childBound := (j + 1) << shift
		tv := st.toVisit[depth][:0]
		for _, k := range children {
			if st.unsettled[k] > 0 && st.minD[k]>>shift == j {
				tv = append(tv, k)
			}
		}
		st.toVisit[depth] = tv
		if len(tv) == 0 {
			// Advance the bucket: recompute minD from the children.
			min := graph.Inf
			for _, k := range children {
				if st.unsettled[k] > 0 && st.minD[k] < min {
					min = st.minD[k]
				}
			}
			st.minD[c] = min
			continue
		}
		for _, k := range tv {
			st.visit(k, childBound)
		}
	}
	st.toVisit = st.toVisit[:depth]
}

func (st *serialState) settle(c int32) {
	if st.unsettled[c] == 0 {
		return
	}
	h := st.h
	v := c
	dv := st.dist[v]
	st.minD[c] = graph.Inf
	for x := c; x >= 0; x = h.Parent(x) {
		st.unsettled[x]--
	}
	ts, ws := st.g.Neighbors(v)
	for i, u := range ts {
		if u == v || st.unsettled[u] == 0 {
			continue
		}
		nd := dv + int64(ws[i])
		if nd < st.dist[u] {
			st.dist[u] = nd
			for x := u; x >= 0; x = h.Parent(x) {
				if nd >= st.minD[x] {
					break
				}
				st.minD[x] = nd
			}
		}
	}
}

// SerialSSSPPhysical is SerialSSSP with physical bucket lists instead of
// virtual buckets: every node keeps real per-bucket child lists, updated on
// every minD change. This is the data structure the paper rejects for the
// parallel machine ("buckets are bad data structures for a parallel machine
// because they do not support simultaneous insertions", §3.2); it exists
// here as the ablation partner quantifying the virtual-bucket choice.
func SerialSSSPPhysical(h *ch.Hierarchy, src int32) []int64 {
	n := h.NumLeaves()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	st := &physState{
		h:         h,
		g:         h.Graph(),
		dist:      dist,
		minD:      make([]int64, h.NumNodes()),
		unsettled: make([]int32, h.NumNodes()),
		buckets:   make([]map[int64][]int32, h.NumNodes()),
	}
	for i := range st.minD {
		st.minD[i] = graph.Inf
		st.unsettled[i] = h.VertexCount(int32(i))
	}
	dist[src] = 0
	for x := src; x >= 0; x = h.Parent(x) {
		st.minD[x] = 0
		if p := h.Parent(x); p >= 0 {
			st.push(p, x)
		}
	}
	st.visit(h.Root(), graph.Inf)
	return dist
}

type physState struct {
	h         *ch.Hierarchy
	g         *graph.Graph
	dist      []int64
	minD      []int64
	unsettled []int32
	// buckets[p] maps bucket index -> children of p queued there. Entries
	// are lazy: a child is live in bucket j iff minD>>shift == j; stale
	// entries are skipped on scan.
	buckets []map[int64][]int32
}

// push enqueues child k into its parent's bucket for k's current minD.
func (st *physState) push(p, k int32) {
	if st.minD[k] >= graph.Inf {
		return
	}
	j := st.minD[k] >> st.h.Shift(p)
	if st.buckets[p] == nil {
		st.buckets[p] = make(map[int64][]int32)
	}
	st.buckets[p][j] = append(st.buckets[p][j], k)
}

// lowerMinD lowers minD[x] to nd, rebucketing x in its parent, and continues
// upward while the value improves.
func (st *physState) lowerMinD(leaf int32, nd int64) {
	h := st.h
	for x := leaf; x >= 0; x = h.Parent(x) {
		if nd >= st.minD[x] {
			break
		}
		st.minD[x] = nd
		if p := h.Parent(x); p >= 0 {
			st.push(p, x)
		}
	}
}

func (st *physState) visit(c int32, bound int64) {
	h := st.h
	if h.IsLeaf(c) {
		st.settle(c)
		return
	}
	shift := h.Shift(c)
	for st.unsettled[c] > 0 {
		m := st.minD[c]
		if m >= bound {
			return
		}
		j := m >> shift
		childBound := (j + 1) << shift
		lst := st.buckets[c][j]
		if len(lst) == 0 {
			delete(st.buckets[c], j)
			// Advance to the next occupied bucket.
			min := graph.Inf
			for _, k := range h.Children(c) {
				if st.unsettled[k] > 0 && st.minD[k] < min {
					min = st.minD[k]
				}
			}
			st.minD[c] = min
			continue
		}
		// Pop one queued child; skip stale entries.
		k := lst[len(lst)-1]
		st.buckets[c][j] = lst[:len(lst)-1]
		if st.unsettled[k] == 0 || st.minD[k]>>shift != j {
			continue
		}
		st.visit(k, childBound)
		// Re-bucket the child at its new minD.
		if st.unsettled[k] > 0 && st.minD[k] < graph.Inf {
			st.push(c, k)
		}
	}
}

func (st *physState) settle(c int32) {
	if st.unsettled[c] == 0 {
		return
	}
	h := st.h
	v := c
	dv := st.dist[v]
	st.minD[c] = graph.Inf
	for x := c; x >= 0; x = h.Parent(x) {
		st.unsettled[x]--
	}
	ts, ws := st.g.Neighbors(v)
	for i, u := range ts {
		if u == v || st.unsettled[u] == 0 {
			continue
		}
		nd := dv + int64(ws[i])
		if nd < st.dist[u] {
			st.dist[u] = nd
			st.lowerMinD(u, nd)
		}
	}
}
