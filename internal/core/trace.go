package core

import (
	"fmt"
	"sync/atomic"
)

// Trace counts the structural events of one Thorup query. The paper's §3.2
// justifies lock-based minD maintenance with the observation that "minD
// values are not propagated very far up the CH in practice"; PropagationHops
// quantifies exactly that, and the other counters expose how much of the
// traversal is gathering versus settling.
type Trace struct {
	// Settled is the number of vertices settled (= reachable vertices).
	Settled int64
	// Relaxations counts successful distance decreases.
	Relaxations int64
	// PropagationHops counts CH-node updates performed by upward minD
	// propagation; PropagationHops/Relaxations is the paper's "how far up"
	// metric.
	PropagationHops int64
	// Gathers counts toVisit-set constructions.
	Gathers int64
	// GatherScanned counts children examined across all gathers.
	GatherScanned int64
	// GatherTaken counts children that entered a toVisit set.
	GatherTaken int64
	// BucketAdvances counts minD refreshes (bucket exhaustion events).
	BucketAdvances int64
	// MaxTovisit is the largest toVisit set seen.
	MaxTovisit int64
}

// HopsPerRelaxation returns the mean propagation distance of a relaxation up
// the hierarchy (0 when no relaxation occurred).
func (t Trace) HopsPerRelaxation() float64 {
	if t.Relaxations == 0 {
		return 0
	}
	return float64(t.PropagationHops) / float64(t.Relaxations)
}

// AttrMap shapes the counters as span attributes for a request-tracing
// layer: the solver-phase breakdown (settled vertices, relaxations, upward
// minD propagation, toVisit gathers, bucket expansions) of one traversal,
// keyed like the /metrics "thorup" section.
func (t Trace) AttrMap() map[string]any {
	return map[string]any{
		"settled":          t.Settled,
		"relaxations":      t.Relaxations,
		"propagation_hops": t.PropagationHops,
		"gathers":          t.Gathers,
		"gather_scanned":   t.GatherScanned,
		"gather_taken":     t.GatherTaken,
		"bucket_advances":  t.BucketAdvances,
		"max_tovisit":      t.MaxTovisit,
	}
}

func (t Trace) String() string {
	return fmt.Sprintf("trace{settled=%d relax=%d hops/relax=%.2f gathers=%d advances=%d maxTovisit=%d}",
		t.Settled, t.Relaxations, t.HopsPerRelaxation(), t.Gathers, t.BucketAdvances, t.MaxTovisit)
}

// Snapshot returns a copy of the counters taken with atomic loads. Each
// field is individually coherent; a snapshot of a finished Run is exact.
func (t *Trace) Snapshot() Trace {
	return Trace{
		Settled:         atomic.LoadInt64(&t.Settled),
		Relaxations:     atomic.LoadInt64(&t.Relaxations),
		PropagationHops: atomic.LoadInt64(&t.PropagationHops),
		Gathers:         atomic.LoadInt64(&t.Gathers),
		GatherScanned:   atomic.LoadInt64(&t.GatherScanned),
		GatherTaken:     atomic.LoadInt64(&t.GatherTaken),
		BucketAdvances:  atomic.LoadInt64(&t.BucketAdvances),
		MaxTovisit:      atomic.LoadInt64(&t.MaxTovisit),
	}
}

// Merge folds a snapshot into t atomically: counters add, MaxTovisit takes
// the maximum. It lets a long-running server accumulate per-query traces
// into one aggregate that many goroutines update concurrently.
func (t *Trace) Merge(s Trace) {
	atomic.AddInt64(&t.Settled, s.Settled)
	atomic.AddInt64(&t.Relaxations, s.Relaxations)
	atomic.AddInt64(&t.PropagationHops, s.PropagationHops)
	atomic.AddInt64(&t.Gathers, s.Gathers)
	atomic.AddInt64(&t.GatherScanned, s.GatherScanned)
	atomic.AddInt64(&t.GatherTaken, s.GatherTaken)
	atomic.AddInt64(&t.BucketAdvances, s.BucketAdvances)
	atomicMax(&t.MaxTovisit, s.MaxTovisit)
}

// add merges event counts atomically (queries may run on many goroutines).
func (t *Trace) addSettled() { atomic.AddInt64(&t.Settled, 1) }

func (t *Trace) addRelax(hops int64) {
	atomic.AddInt64(&t.Relaxations, 1)
	atomic.AddInt64(&t.PropagationHops, hops)
}

func (t *Trace) addGather(scanned, taken int) {
	atomic.AddInt64(&t.Gathers, 1)
	atomic.AddInt64(&t.GatherScanned, int64(scanned))
	atomic.AddInt64(&t.GatherTaken, int64(taken))
	atomicMax(&t.MaxTovisit, int64(taken))
}

func (t *Trace) addAdvance() { atomic.AddInt64(&t.BucketAdvances, 1) }

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}
