package core

import (
	"fmt"
	"sync/atomic"
)

// Trace counts the structural events of one Thorup query. The paper's §3.2
// justifies lock-based minD maintenance with the observation that "minD
// values are not propagated very far up the CH in practice"; PropagationHops
// quantifies exactly that, and the other counters expose how much of the
// traversal is gathering versus settling.
type Trace struct {
	// Settled is the number of vertices settled (= reachable vertices).
	Settled int64
	// Relaxations counts successful distance decreases.
	Relaxations int64
	// PropagationHops counts CH-node updates performed by upward minD
	// propagation; PropagationHops/Relaxations is the paper's "how far up"
	// metric.
	PropagationHops int64
	// Gathers counts toVisit-set constructions.
	Gathers int64
	// GatherScanned counts children examined across all gathers.
	GatherScanned int64
	// GatherTaken counts children that entered a toVisit set.
	GatherTaken int64
	// BucketAdvances counts minD refreshes (bucket exhaustion events).
	BucketAdvances int64
	// MaxTovisit is the largest toVisit set seen.
	MaxTovisit int64
}

// HopsPerRelaxation returns the mean propagation distance of a relaxation up
// the hierarchy (0 when no relaxation occurred).
func (t Trace) HopsPerRelaxation() float64 {
	if t.Relaxations == 0 {
		return 0
	}
	return float64(t.PropagationHops) / float64(t.Relaxations)
}

func (t Trace) String() string {
	return fmt.Sprintf("trace{settled=%d relax=%d hops/relax=%.2f gathers=%d advances=%d maxTovisit=%d}",
		t.Settled, t.Relaxations, t.HopsPerRelaxation(), t.Gathers, t.BucketAdvances, t.MaxTovisit)
}

// add merges event counts atomically (queries may run on many goroutines).
func (t *Trace) addSettled() { atomic.AddInt64(&t.Settled, 1) }

func (t *Trace) addRelax(hops int64) {
	atomic.AddInt64(&t.Relaxations, 1)
	atomic.AddInt64(&t.PropagationHops, hops)
}

func (t *Trace) addGather(scanned, taken int) {
	atomic.AddInt64(&t.Gathers, 1)
	atomic.AddInt64(&t.GatherScanned, int64(scanned))
	atomic.AddInt64(&t.GatherTaken, int64(taken))
	for {
		cur := atomic.LoadInt64(&t.MaxTovisit)
		if int64(taken) <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&t.MaxTovisit, cur, int64(taken)) {
			return
		}
	}
}

func (t *Trace) addAdvance() { atomic.AddInt64(&t.BucketAdvances, 1) }
