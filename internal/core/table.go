package core

import "repro/internal/graph"

// DistanceTable computes the many-to-many distance table between sources and
// targets: result[i][j] is the distance from sources[i] to targets[j]. All
// rows are independent shared-CH Thorup queries run concurrently (exec mode)
// — the many-to-many workload of Knopp et al. that the paper's §2 and §6
// identify as the consumer of exactly this batching ability.
func (s *Solver) DistanceTable(sources, targets []int32) [][]int64 {
	full := s.RunMany(sources)
	out := make([][]int64, len(sources))
	for i := range sources {
		row := make([]int64, len(targets))
		for j, t := range targets {
			row[j] = full[i][t]
		}
		out[i] = row
	}
	return out
}

// Eccentricity returns the largest finite distance of the last Run — the
// source's (weighted) eccentricity.
func (q *Query) Eccentricity() int64 {
	var max int64
	for _, d := range q.dist {
		if d < graph.Inf && d > max {
			max = d
		}
	}
	return max
}

// Reached returns how many vertices the last Run reached.
func (q *Query) Reached() int {
	n := 0
	for _, d := range q.dist {
		if d < graph.Inf {
			n++
		}
	}
	return n
}
