package core

import (
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
	"repro/internal/par"
)

// A reused query instance must be indistinguishable from a fresh allocation:
// same distances byte for byte, same invariants, and after Reset the same
// zeroed state a fresh Query starts from. This is the safety contract behind
// pooling query instances in the serving layer.
func TestQueryResetReuseMatchesFresh(t *testing.T) {
	g := gen.Random(600, 2400, 1<<10, gen.UWD, 11)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewExec(4))

	for _, srcs := range [][]int32{{0}, {17, 300, 599}} {
		fresh := s.Query()
		want := append([]int64(nil), fresh.RunFromSources(srcs)...)

		// Dirty a second instance with unrelated queries, then reuse it.
		reused := s.Query()
		reused.EnableTrace()
		reused.Run(42)
		reused.RunFromSources([]int32{1, 2, 3})
		reused.Reset()

		got := reused.RunFromSources(srcs)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("sources %v: reused dist[%d] = %d, fresh %d", srcs, v, got[v], want[v])
			}
		}
		if err := reused.CheckInvariants(); err != nil {
			t.Fatalf("sources %v: reused query invariants: %v", srcs, err)
		}
	}
}

// Reset must restore exactly the zero state of a fresh allocation, trace
// counters included.
func TestQueryResetRestoresPristineState(t *testing.T) {
	g := gen.Random(200, 800, 1<<8, gen.UWD, 5)
	s := NewSolver(ch.BuildKruskal(g), par.NewExec(2))

	q := s.Query()
	tr := q.EnableTrace()
	q.Run(7)
	if tr.Settled == 0 {
		t.Fatal("trace did not record the run")
	}
	q.Reset()

	fresh := s.Query()
	check := func(name string, got, want []int64) {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %d after Reset, fresh has %d", name, i, got[i], want[i])
			}
		}
	}
	check("dist", q.dist, fresh.dist)
	check("minD", q.minD, fresh.minD)
	for i := range fresh.unsettled {
		if q.unsettled[i] != fresh.unsettled[i] {
			t.Fatalf("unsettled[%d] = %d after Reset, fresh has %d", i, q.unsettled[i], fresh.unsettled[i])
		}
	}
	for i := range fresh.scratch {
		if q.scratch[i] != 0 {
			t.Fatalf("scratch[%d] = %d after Reset, want 0", i, q.scratch[i])
		}
	}
	if *tr != (Trace{}) {
		t.Fatalf("trace not cleared by Reset: %+v", *tr)
	}
}
