package core

import (
	"testing"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/par"
)

// FuzzThorupVsDijkstra decodes arbitrary bytes into a small multigraph and
// cross-checks every Thorup variant against Dijkstra. This hunts for CH or
// traversal bugs on degenerate shapes the structured generators never emit.
func FuzzThorupVsDijkstra(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 2, 2, 3, 4})
	f.Add([]byte{2, 0, 0, 200})
	f.Add([]byte{10})
	f.Add([]byte{7, 0, 1, 255, 1, 2, 1, 2, 0, 128, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%30 + 1
		data = data[1:]
		b := graph.NewBuilder(n)
		for len(data) >= 3 {
			u := int32(int(data[0]) % n)
			v := int32(int(data[1]) % n)
			w := uint32(data[2])%255 + 1
			b.MustAddEdge(u, v, w)
			data = data[3:]
		}
		g := b.Build()
		h := ch.BuildKruskal(g)
		if err := h.Validate(); err != nil {
			t.Fatalf("hierarchy invalid: %v", err)
		}
		src := int32(0)
		want := dijkstra.SSSP(g, src)
		for name, got := range map[string][]int64{
			"serial":   SerialSSSP(h, src),
			"physical": SerialSSSPPhysical(h, src),
			"parallel": NewSolver(h, par.NewExec(2)).SSSP(src),
		} {
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: d[%d]=%d, dijkstra %d (n=%d)", name, v, got[v], want[v], n)
				}
			}
		}
	})
}
