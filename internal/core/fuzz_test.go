package core

import (
	"testing"

	"repro/internal/ch"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/mlb"
	"repro/internal/par"
)

// decodeGraph turns arbitrary fuzz bytes into a small multigraph: first byte
// picks n in [1,30], then each (u, v, w) triple adds one edge. Shared by the
// differential fuzz targets so their corpora cross-pollinate.
func decodeGraph(data []byte) (*graph.Graph, []byte) {
	n := int(data[0])%30 + 1
	data = data[1:]
	b := graph.NewBuilder(n)
	for len(data) >= 3 {
		u := int32(int(data[0]) % n)
		v := int32(int(data[1]) % n)
		w := uint32(data[2])%255 + 1
		b.MustAddEdge(u, v, w)
		data = data[3:]
	}
	return b.Build(), data
}

// FuzzThorupVsDijkstra decodes arbitrary bytes into a small multigraph and
// cross-checks every Thorup variant against Dijkstra. This hunts for CH or
// traversal bugs on degenerate shapes the structured generators never emit.
func FuzzThorupVsDijkstra(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 2, 2, 3, 4})
	f.Add([]byte{2, 0, 0, 200})
	f.Add([]byte{10})
	f.Add([]byte{7, 0, 1, 255, 1, 2, 1, 2, 0, 128, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		g, _ := decodeGraph(data)
		n := g.NumVertices()
		h := ch.BuildKruskal(g)
		if err := h.Validate(); err != nil {
			t.Fatalf("hierarchy invalid: %v", err)
		}
		src := int32(0)
		want := dijkstra.SSSP(g, src)
		for name, got := range map[string][]int64{
			"serial":   SerialSSSP(h, src),
			"physical": SerialSSSPPhysical(h, src),
			"parallel": NewSolver(h, par.NewExec(2)).SSSP(src),
		} {
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s: d[%d]=%d, dijkstra %d (n=%d)", name, v, got[v], want[v], n)
				}
			}
		}
	})
}

// FuzzDeltaStepVsDijkstra cross-checks delta-stepping against Dijkstra on
// fuzz-decoded multigraphs. The byte after the edge triples (when present)
// picks the bucket width, so the fuzzer also explores degenerate deltas —
// width 1 (pure Dijkstra-like) through widths far above the weight range.
func FuzzDeltaStepVsDijkstra(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 2, 2, 3, 4})
	f.Add([]byte{2, 0, 0, 200, 7})
	f.Add([]byte{10})
	f.Add([]byte{7, 0, 1, 255, 1, 2, 1, 2, 0, 128, 3, 3, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		g, rest := decodeGraph(data)
		delta := deltastep.DefaultDelta(g)
		if len(rest) > 0 {
			delta = int64(rest[0])%300 + 1
		}
		rt := par.NewExec(2)
		want := dijkstra.SSSP(g, 0)
		got := deltastep.SSSP(rt, g, 0, delta)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("delta=%d: d[%d]=%d, dijkstra %d (n=%d)", delta, v, got[v], want[v], g.NumVertices())
			}
		}
	})
}

// FuzzMLBVsDijkstra cross-checks the multi-level bucket solver against
// Dijkstra on fuzz-decoded multigraphs.
func FuzzMLBVsDijkstra(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 1, 2, 2, 2, 3, 4})
	f.Add([]byte{2, 0, 0, 200})
	f.Add([]byte{10})
	f.Add([]byte{7, 0, 1, 255, 1, 2, 1, 2, 0, 128, 3, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		g, _ := decodeGraph(data)
		want := dijkstra.SSSP(g, 0)
		got := mlb.SSSP(g, 0)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("mlb: d[%d]=%d, dijkstra %d (n=%d)", v, got[v], want[v], g.NumVertices())
			}
		}
	})
}
