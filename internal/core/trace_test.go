package core

import (
	"strings"
	"testing"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func TestTraceCountsReachable(t *testing.T) {
	g := gen.Random(1000, 4000, 1<<10, gen.UWD, 3)
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(4)).Query()
	tr := q.EnableTrace()
	q.Run(0)
	if tr.Settled != 1000 {
		t.Fatalf("settled %d, want 1000 (connected graph)", tr.Settled)
	}
	if tr.Relaxations < 999 {
		t.Fatalf("relaxations %d too low", tr.Relaxations)
	}
	if tr.Gathers == 0 || tr.BucketAdvances == 0 || tr.MaxTovisit == 0 {
		t.Fatalf("empty trace: %+v", tr)
	}
	if !strings.Contains(tr.String(), "settled=1000") {
		t.Fatalf("String: %s", tr)
	}
}

func TestTraceResetBetweenRuns(t *testing.T) {
	g := gen.Path(50, 2)
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(1)).Query()
	tr := q.EnableTrace()
	q.Run(0)
	first := *tr
	q.Run(0)
	if tr.Settled != first.Settled || tr.Relaxations != first.Relaxations {
		t.Fatalf("trace not reset: %+v vs %+v", first, *tr)
	}
}

// The paper's §3.2 claim: minD values "are not propagated very far up the CH
// in practice". On every family the mean propagation distance per relaxation
// must be a small constant, far below the hierarchy height.
func TestPropagationLocality(t *testing.T) {
	for _, in := range []gen.Instance{
		{Class: gen.Rand, Dist: gen.UWD, LogN: 12, LogC: 12, Seed: 1},
		{Class: gen.Rand, Dist: gen.PWD, LogN: 12, LogC: 12, Seed: 2},
		{Class: gen.RMAT, Dist: gen.UWD, LogN: 12, LogC: 2, Seed: 3},
	} {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		q := NewSolver(h, par.NewExec(1)).Query()
		tr := q.EnableTrace()
		q.Run(0)
		hops := tr.HopsPerRelaxation()
		height := float64(h.ComputeStats().Height)
		if hops <= 0 {
			t.Fatalf("%s: no propagation recorded", in.Name())
		}
		if hops > height/2 {
			t.Errorf("%s: mean propagation %.2f vs height %.0f — locality claim fails", in.Name(), hops, height)
		}
	}
}

func TestTraceSnapshotAndMerge(t *testing.T) {
	g := gen.Random(600, 2400, 1<<10, gen.UWD, 11)
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(4)).Query()
	tr := q.EnableTrace()
	if q.Trace() != tr {
		t.Fatal("Trace() accessor disagrees with EnableTrace")
	}
	q.Run(0)
	snap := tr.Snapshot()
	if snap != *tr {
		t.Fatalf("snapshot of a finished run differs: %+v vs %+v", snap, *tr)
	}

	var agg Trace
	agg.Merge(snap)
	agg.Merge(snap)
	if agg.Settled != 2*snap.Settled || agg.Relaxations != 2*snap.Relaxations ||
		agg.PropagationHops != 2*snap.PropagationHops || agg.Gathers != 2*snap.Gathers ||
		agg.GatherScanned != 2*snap.GatherScanned || agg.GatherTaken != 2*snap.GatherTaken ||
		agg.BucketAdvances != 2*snap.BucketAdvances {
		t.Fatalf("merge should add counters: %+v vs %+v", agg, snap)
	}
	if agg.MaxTovisit != snap.MaxTovisit {
		t.Fatalf("merge should max MaxTovisit: %d vs %d", agg.MaxTovisit, snap.MaxTovisit)
	}
	agg.Merge(Trace{MaxTovisit: snap.MaxTovisit + 7})
	if agg.MaxTovisit != snap.MaxTovisit+7 {
		t.Fatalf("merge did not raise MaxTovisit: %d", agg.MaxTovisit)
	}
}

func TestHopsPerRelaxationZero(t *testing.T) {
	var tr Trace
	if tr.HopsPerRelaxation() != 0 {
		t.Fatal("zero trace should report 0 hops/relax")
	}
}

func TestParentsCertifyTree(t *testing.T) {
	g := gen.Random(800, 3200, 1<<12, gen.UWD, 5)
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(4)).Query()
	dist := q.Run(0)
	parent := q.Parents()
	if parent[0] != -1 {
		t.Fatal("source has a parent")
	}
	for v := int32(1); v < int32(g.NumVertices()); v++ {
		if dist[v] == graph.Inf {
			if parent[v] != -1 {
				t.Fatalf("unreachable %d has parent", v)
			}
			continue
		}
		p := parent[v]
		if p < 0 {
			t.Fatalf("reachable %d has no parent", v)
		}
		ts, ws := g.Neighbors(p)
		ok := false
		for i, u := range ts {
			if u == v && dist[p]+int64(ws[i]) == dist[v] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("parent edge (%d,%d) does not certify", p, v)
		}
	}
}

func TestMultiSourceMatchesMinOfDijkstras(t *testing.T) {
	g := gen.Random(600, 2400, 1<<10, gen.UWD, 9)
	h := ch.BuildKruskal(g)
	sources := []int32{0, 123, 456}

	want := make([]int64, g.NumVertices())
	for i := range want {
		want[i] = graph.Inf
	}
	for _, s := range sources {
		d := dijkstra.SSSP(g, s)
		for v := range d {
			if d[v] < want[v] {
				want[v] = d[v]
			}
		}
	}

	q := NewSolver(h, par.NewExec(4)).Query()
	got := q.RunFromSources(sources)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("parallel multi-source d[%d]=%d, want %d", v, got[v], want[v])
		}
	}
	gotSerial := SerialSSSPFromSources(h, sources)
	for v := range want {
		if gotSerial[v] != want[v] {
			t.Fatalf("serial multi-source d[%d]=%d, want %d", v, gotSerial[v], want[v])
		}
	}
}

func TestMultiSourceEmptyPanics(t *testing.T) {
	h := ch.BuildKruskal(gen.Path(3, 1))
	q := NewSolver(h, par.NewExec(1)).Query()
	defer func() {
		if recover() == nil {
			t.Fatal("empty sources did not panic")
		}
	}()
	q.RunFromSources(nil)
}

func TestMultiSourceDuplicatesOK(t *testing.T) {
	g := gen.Path(10, 3)
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(2)).Query()
	d := q.RunFromSources([]int32{4, 4, 4})
	for v := 0; v < 10; v++ {
		want := int64(3 * abs(v-4))
		if d[v] != want {
			t.Fatalf("d[%d]=%d want %d", v, d[v], want)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDistanceTable(t *testing.T) {
	g := gen.Random(400, 1600, 1<<10, gen.UWD, 13)
	h := ch.BuildKruskal(g)
	s := NewSolver(h, par.NewExec(4))
	sources := []int32{0, 100, 399}
	targets := []int32{5, 200, 300}
	table := s.DistanceTable(sources, targets)
	for i, src := range sources {
		want := dijkstra.SSSP(g, src)
		for j, tgt := range targets {
			if table[i][j] != want[tgt] {
				t.Fatalf("table[%d][%d]=%d, want %d", i, j, table[i][j], want[tgt])
			}
		}
	}
}

func TestEccentricityAndReached(t *testing.T) {
	g := gen.Path(5, 3) // distances 0,3,6,9,12 from vertex 0
	h := ch.BuildKruskal(g)
	q := NewSolver(h, par.NewExec(1)).Query()
	q.Run(0)
	if q.Eccentricity() != 12 || q.Reached() != 5 {
		t.Fatalf("ecc=%d reached=%d", q.Eccentricity(), q.Reached())
	}
}
