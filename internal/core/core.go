package core
