package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/ch"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

// Strategy selects how toVisit-set loops are parallelized.
type Strategy int

const (
	// Naive runs every toVisit loop on all processors ("Thorup A").
	Naive Strategy = iota
	// Selective chooses serial / single-processor / multi-processor from the
	// iteration count ("Thorup B").
	Selective
)

func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case Selective:
		return "selective"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Solver runs Thorup SSSP queries over a shared Component Hierarchy.
type Solver struct {
	h          *ch.Hierarchy
	rt         *par.Runtime
	strategy   Strategy
	thresholds par.Thresholds
}

// Option configures a Solver.
type Option func(*Solver)

// WithStrategy selects the toVisit strategy (default Selective).
func WithStrategy(s Strategy) Option {
	return func(sv *Solver) { sv.strategy = s }
}

// WithThresholds overrides the selective-parallelization thresholds.
func WithThresholds(t par.Thresholds) Option {
	return func(sv *Solver) { sv.thresholds = t }
}

// NewSolver creates a solver over the hierarchy, executing on rt.
func NewSolver(h *ch.Hierarchy, rt *par.Runtime, opts ...Option) *Solver {
	s := &Solver{h: h, rt: rt, strategy: Selective, thresholds: par.DefaultThresholds}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Hierarchy returns the shared Component Hierarchy.
func (s *Solver) Hierarchy() *ch.Hierarchy { return s.h }

// Query holds the per-query state of one SSSP computation. Queries are cheap
// relative to the graph ("it is more memory efficient to allocate a new
// instance of the CH than to create a copy of the entire graph", paper §5.2)
// and reusable: Run resets all state.
type Query struct {
	s         *Solver
	dist      []int64 // per vertex, atomic
	minD      []int64 // per CH node, atomic
	unsettled []int32 // per CH node: unsettled vertices in subtree, atomic
	scratch   []int32 // per child link: toVisit build space, one region per node
	trace     *Trace  // optional event counters, nil unless EnableTrace
}

// Query allocates per-query state bound to this solver.
func (s *Solver) Query() *Query {
	nodes := s.h.NumNodes()
	return &Query{
		s:         s,
		dist:      make([]int64, s.h.NumLeaves()),
		minD:      make([]int64, nodes),
		unsettled: make([]int32, nodes),
		scratch:   make([]int32, s.h.NumChildLinks()),
	}
}

// InstanceBytes is the memory footprint of one query instance — the paper's
// Table 2 "instance" column. It is a pure function of the hierarchy's
// dimensions, so callers reporting it need not allocate a Query.
func (s *Solver) InstanceBytes() int64 {
	nodes := int64(s.h.NumNodes())
	return int64(s.h.NumLeaves())*8 + nodes*8 + nodes*4 + int64(s.h.NumChildLinks())*4
}

// InstanceBytes is the memory footprint of this query instance.
func (q *Query) InstanceBytes() int64 {
	return int64(len(q.dist))*8 + int64(len(q.minD))*8 +
		int64(len(q.unsettled))*4 + int64(len(q.scratch))*4
}

// SSSP is a convenience one-shot: build a query, run it, return distances.
func (s *Solver) SSSP(src int32) []int64 {
	return s.Query().Run(src)
}

// EnableTrace turns on event counting for this query and returns the counter
// block (reset on every Run). Tracing costs a few atomic increments per
// event.
func (q *Query) EnableTrace() *Trace {
	q.trace = &Trace{}
	return q.trace
}

// Trace returns the counter block installed by EnableTrace, or nil when
// tracing is off.
func (q *Query) Trace() *Trace { return q.trace }

// Reset scrubs the query back to the state of a freshly allocated instance:
// all distance, minD, unsettled, and scratch words zeroed, and any enabled
// trace cleared (tracing itself stays on). Run resets everything it reads, so
// Reset is not required between runs; it exists so pooled instances
// (sync.Pool reuse in a serving layer) carry no residue of the previous
// query across requests, and so tests can prove reuse is indistinguishable
// from a fresh allocation. It runs serially and charges nothing to the
// runtime, making it safe to call outside any parallel region.
func (q *Query) Reset() {
	clear(q.dist)
	clear(q.minD)
	clear(q.unsettled)
	clear(q.scratch)
	if q.trace != nil {
		*q.trace = Trace{}
	}
}

// Run computes shortest path distances from src. The returned slice aliases
// the query's internal state and is valid until the next Run.
func (q *Query) Run(src int32) []int64 {
	return q.RunFromSources([]int32{src})
}

// RunFromSources computes, for every vertex, the distance to the nearest of
// the given source vertices (multi-source SSSP / nearest-facility search).
// With one source this is ordinary SSSP; Thorup's invariants are unaffected
// by several distance-zero leaves. The returned slice aliases the query's
// internal state and is valid until the next Run.
func (q *Query) RunFromSources(sources []int32) []int64 {
	s := q.s
	h := s.h
	n := h.NumLeaves()
	if n == 0 {
		return q.dist
	}
	if len(sources) == 0 {
		panic("core: no source vertices")
	}
	for _, src := range sources {
		if src < 0 || int(src) >= n {
			panic(fmt.Sprintf("core: source %d out of range [0,%d)", src, n))
		}
	}
	rt := s.rt

	// Reset.
	rt.For(n, func(i int) { q.dist[i] = graph.Inf })
	rt.For(h.NumNodes(), func(i int) {
		q.minD[i] = graph.Inf
		q.unsettled[i] = h.VertexCount(int32(i))
	})
	if q.trace != nil {
		*q.trace = Trace{}
	}

	for _, src := range sources {
		q.dist[src] = 0
		for x := src; x >= 0; x = h.Parent(x) {
			q.minD[x] = 0
		}
	}
	rt.Charge(int64(h.MaxLevel()) * int64(len(sources)))

	q.visit(h.Root(), graph.Inf)
	return q.dist
}

// Parents derives shortest-path-tree parent pointers from the distances of
// the last Run: parent[v] is a neighbour u with dist[u] + w(u,v) == dist[v],
// or -1 for sources and unreachable vertices. The scan is race-free (it runs
// after the query) and parallel.
func (q *Query) Parents() []int32 {
	h := q.s.h
	g := h.Graph()
	n := h.NumLeaves()
	parent := make([]int32, n)
	q.s.rt.For(n, func(vi int) {
		v := int32(vi)
		parent[v] = -1
		dv := q.dist[v]
		if dv == graph.Inf || dv == 0 {
			return
		}
		ts, ws := g.Neighbors(v)
		q.s.rt.Charge(int64(len(ts)))
		for i, u := range ts {
			if u != v && q.dist[u]+int64(ws[i]) == dv {
				parent[v] = u
				return
			}
		}
	})
	return parent
}

// Dist returns the distance slice of the last Run.
func (q *Query) Dist() []int64 { return q.dist }

// visit processes component c while its minimum unsettled tentative distance
// stays below bound (the exclusive end of the parent's current bucket). On
// return, either the component is fully settled or minD(c) >= bound and the
// stored minD is up to date.
func (q *Query) visit(c int32, bound int64) {
	h := q.s.h
	if h.IsLeaf(c) {
		q.visitLeaf(c)
		return
	}
	shift := h.Shift(c)
	children := h.Children(c)
	for {
		if atomic.LoadInt32(&q.unsettled[c]) == 0 {
			return
		}
		m := atomic.LoadInt64(&q.minD[c])
		if m >= bound {
			return
		}
		j := m >> shift
		childBound := (j + 1) << shift

		// Build the toVisit set: all children (virtually) in bucket j — the
		// paper's Figure 3 loop, run with the configured strategy.
		toVisit := q.gather(c, children, j, shift)
		if q.trace != nil {
			q.trace.addGather(len(children), len(toVisit))
		}
		if len(toVisit) == 0 {
			// Bucket j exhausted: advance by recomputing minD from the
			// children. If nothing is left below bound the caller takes over.
			if q.trace != nil {
				q.trace.addAdvance()
			}
			q.refreshMinD(c, children)
			continue
		}
		// Visit everything in the lowest bucket, in parallel (safe by
		// Thorup's Lemma: crossing edges weigh >= 2^shift, one full bucket).
		// Child visits are spawned as lightweight threads (MTA futures), not
		// team-forked loops: the set is often tiny but the bodies are whole
		// subtree traversals.
		q.s.rt.ForMode(mta.Futures, len(toVisit), func(i int) {
			q.visit(toVisit[i], childBound)
		})
	}
}

// visitLeaf settles the vertex of leaf c and relaxes its edges.
func (q *Query) visitLeaf(c int32) {
	// Only one visitor can win the settle; concurrent duplicates back off.
	if !atomic.CompareAndSwapInt32(&q.unsettled[c], 1, 0) {
		return
	}
	if q.trace != nil {
		q.trace.addSettled()
	}
	h := q.s.h
	rt := q.s.rt
	g := h.Graph()
	v := c // leaf id == vertex id
	dv := atomic.LoadInt64(&q.dist[v])
	atomic.StoreInt64(&q.minD[c], graph.Inf)

	// Account for the settled vertex up the tree.
	for x := h.Parent(c); x >= 0; x = h.Parent(x) {
		atomic.AddInt32(&q.unsettled[x], -1)
	}

	ts, ws := g.Neighbors(v)
	rt.Charge(int64(len(ts)) * 3)
	for i, u := range ts {
		if u == v {
			continue
		}
		if atomic.LoadInt32(&q.unsettled[u]) == 0 {
			continue // already settled; its distance cannot improve
		}
		nd := dv + int64(ws[i])
		if par.CASMin(&q.dist[u], nd) {
			q.propagate(u, nd)
		}
	}
}

// propagate pushes a lowered leaf distance up the minD chain, stopping at the
// first ancestor that is already at least as low (whoever lowered that
// ancestor is responsible for the rest of the chain).
func (q *Query) propagate(leaf int32, nd int64) {
	h := q.s.h
	hops := int64(0)
	for x := leaf; x >= 0; x = h.Parent(x) {
		if !par.CASMin(&q.minD[x], nd) {
			break // plain read: CASMin only writes when improving
		}
		// A successful minD update on a component is the synchronized write
		// the paper protects with a lock ("our implementation must lock the
		// value of minD during an update", §3.2); contention is modelled per
		// CH-node word. A leaf's minD is just its own d(v) — no shared lock.
		if !h.IsLeaf(x) {
			q.s.rt.ChargeContended(uint64(x))
		}
		hops++
	}
	q.s.rt.Charge(hops + 1)
	if q.trace != nil {
		q.trace.addRelax(hops)
	}
}

// gather collects the children currently in bucket j (minD >> shift == j and
// not fully settled) using the solver's strategy — the selective
// parallelization of the paper's §3.3. The toVisit set is built in node c's
// region of the query's flat scratch buffer instead of a fresh allocation:
// the region is private to c (ChildOffset ranges are disjoint) and c's
// gathers never overlap in time (a node is visited by one goroutine, and its
// bucket loop is sequential), so the returned slice stays valid until c's
// next gather — after its consumers have finished.
func (q *Query) gather(c int32, children []int32, j int64, shift uint) []int32 {
	out := q.scratch[q.s.h.ChildOffset(c):][:len(children)]
	var cursor int64
	q.forStrategy(len(children), func(i int) {
		k := children[i]
		q.s.rt.Charge(2)
		if atomic.LoadInt32(&q.unsettled[k]) == 0 {
			return
		}
		if atomic.LoadInt64(&q.minD[k])>>shift == j {
			out[atomic.AddInt64(&cursor, 1)-1] = k
		}
	})
	return out[:cursor]
}

// forStrategy runs a toVisit-shaped loop under the configured strategy.
func (q *Query) forStrategy(n int, body func(i int)) {
	switch q.s.strategy {
	case Naive:
		q.s.rt.ForMode(mta.MultiPar, n, body)
	default:
		q.s.rt.ForAuto(q.s.thresholds, n, body)
	}
}

// refreshMinD recomputes minD(c) from the children, raising it at a quiescent
// point. A rescan after the raise closes the race with concurrent CAS-min
// decreases (decreases always update the child before the parent, so either
// the rescan sees the lower child value or the decreaser's own parent update
// lands after the raise).
func (q *Query) refreshMinD(c int32, children []int32) {
	rt := q.s.rt
	scan := func() int64 {
		min := graph.Inf
		// The scan is itself a toVisit-shaped loop over the children.
		var amin int64 = graph.Inf
		q.forStrategy(len(children), func(i int) {
			k := children[i]
			rt.Charge(2)
			if atomic.LoadInt32(&q.unsettled[k]) == 0 {
				return
			}
			par.CASMin(&amin, atomic.LoadInt64(&q.minD[k]))
		})
		if amin < min {
			min = amin
		}
		return min
	}
	for {
		cur := atomic.LoadInt64(&q.minD[c])
		newv := scan()
		if newv <= cur {
			return // already low enough; nothing to raise
		}
		if atomic.CompareAndSwapInt64(&q.minD[c], cur, newv) {
			if again := scan(); again < newv {
				par.CASMin(&q.minD[c], again)
			}
			return
		}
	}
}
