package core

import (
	"sync"

	"repro/internal/ch"
	"repro/internal/mta"
	"repro/internal/par"
)

// RunMany executes one SSSP query per source concurrently against the shared
// Component Hierarchy — the paper's Figure 5 workload. Each query gets its
// own state; they share the hierarchy, the graph, and the runtime's worker
// pool. Results are indexed like sources.
//
// With a sim-mode runtime the queries are executed sequentially (a sim
// runtime is single-threaded by design); use SimultaneousCost to model their
// co-scheduled makespan.
func (s *Solver) RunMany(sources []int32) [][]int64 {
	out := make([][]int64, len(sources))
	if s.rt.IsSim() {
		for i, src := range sources {
			q := s.Query()
			q.Run(src)
			out[i] = q.dist
		}
		return out
	}
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src int32) {
			defer wg.Done()
			q := s.Query()
			q.Run(src)
			out[i] = q.dist
		}(i, src)
	}
	wg.Wait()
	return out
}

// SimultaneousCost simulates len(sources) Thorup queries sharing one
// Component Hierarchy, co-scheduled on the given machine: each query's
// (work, span) is measured on its own simulation runtime and the combined
// makespan follows the machine's co-schedule bound. It returns the makespan
// in cycles together with the per-query distances.
//
// This is the model behind the Figure 5 reproduction: k shared-CH Thorup
// queries fill the machine with work from independent traversals, while the
// delta-stepping baseline must run its k queries back to back.
func SimultaneousCost(h *ch.Hierarchy, machine mta.Machine, sources []int32, opts ...Option) (int64, [][]int64) {
	costs := make([]mta.Cost, len(sources))
	out := make([][]int64, len(sources))
	for i, src := range sources {
		rt := par.NewSim(machine)
		s := NewSolver(h, rt, opts...)
		q := s.Query()
		q.Run(src)
		out[i] = q.dist
		costs[i] = rt.SimCost()
	}
	return machine.CoSchedule(costs), out
}

// TuneThresholds determines selective-parallelization thresholds for a
// machine by simulating the toVisit computation, as the paper did ("we
// determined the thresholds experimentally by simulating the tovisit
// computation", §3.3): for growing loop lengths it evaluates the modelled
// makespan of the scan loop in each regime and returns the crossover points.
func TuneThresholds(machine mta.Machine) par.Thresholds {
	const iterCost = 3 // base iteration + the two charged references of a scan
	span := func(mode mta.LoopMode, n int) int64 {
		c := machine.ParallelLoop(mode, int64(n)*iterCost, int64(n)*iterCost, iterCost)
		return c.Span
	}
	crossover := func(a, b mta.LoopMode) int {
		// Smallest n (power-of-two probe, then linear refinement) where mode
		// b beats mode a.
		n := 1
		for n < 1<<22 && span(b, n) >= span(a, n) {
			n *= 2
		}
		if n == 1 || n >= 1<<22 {
			return n
		}
		lo := n / 2
		for lo < n && span(b, lo) >= span(a, lo) {
			lo++
		}
		return lo
	}
	th := par.Thresholds{
		Single: crossover(mta.Serial, mta.SinglePar),
		Multi:  crossover(mta.SinglePar, mta.MultiPar),
	}
	if th.Multi < th.Single {
		th.Multi = th.Single
	}
	return th
}
