# Standard workflows for the repro module. Everything is stdlib-only Go;
# no external tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build vet test race bench check fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/cc ./internal/deltastep \
		./internal/par ./internal/bfs ./internal/mta ./internal/digraph \
		./internal/obs ./cmd/ssspd .

bench:
	$(GO) test -bench=. -benchmem ./...

# Fast pre-merge gate: static checks plus the race detector over the
# concurrent traversal core and the daemon middleware.
check:
	$(GO) vet ./...
	$(GO) test -race ./internal/core/... ./cmd/ssspd/...

# Short fuzzing passes over the format parsers and the solver cross-check.
fuzz:
	$(GO) test -fuzz FuzzReadGraph -fuzztime 30s ./internal/dimacs
	$(GO) test -fuzz FuzzReadSources -fuzztime 15s ./internal/dimacs
	$(GO) test -fuzz FuzzThorupVsDijkstra -fuzztime 30s ./internal/core

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/experiments -all -csv results/csv | tee results/experiments-logn16.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/roadnetwork
	$(GO) run ./examples/manysources
	$(GO) run ./examples/facilities

clean:
	$(GO) clean ./...
