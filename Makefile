# Standard workflows for the repro module. Everything is stdlib-only Go;
# no external tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build vet test race bench bench-engine bench-catalog bench-trace bench-serve bench-serve-smoke bench-router bench-mutate bench-costmodel check docs-check stress fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/core ./internal/cc ./internal/deltastep \
		./internal/par ./internal/bfs ./internal/mta ./internal/digraph \
		./internal/obs ./internal/engine ./internal/catalog ./internal/snapshot \
		./internal/trace ./internal/loadgen ./internal/router ./internal/mutate \
		./internal/costmodel ./cmd/ssspd ./cmd/ssspr .

bench:
	$(GO) test -bench=. -benchmem ./...

# Query-engine comparison benchmarks (pooled vs cold, cache hit vs miss,
# batch-64 vs 64 sequential HTTP queries), written to BENCH_engine.json.
bench-engine:
	BENCH_ENGINE_OUT=$(CURDIR)/BENCH_engine.json \
		$(GO) test -run TestWriteEngineBenchJSON -count=1 -v ./cmd/ssspd

# Catalog comparison benchmarks (the graph-activation ladder: text parse +
# CH rebuild, v1/v2 snapshot copy loads, cold and warm mmap loads; plus
# warmed vs cold first query after a swap), written to BENCH_catalog.json.
# Gates: v2 copy load >= 10x over text, warm mmap >= 50x over v1 copy.
bench-catalog:
	BENCH_CATALOG_OUT=$(CURDIR)/BENCH_catalog.json \
		$(GO) test -run TestWriteCatalogBenchJSON -count=1 -v ./internal/catalog

# Tracing overhead benchmark: client-observed p50/p99 query latency with the
# tracing layer at its default 1-in-100 sampling vs disabled, written to
# BENCH_trace.json. Fails if the p50 overhead reaches 5%.
bench-trace:
	BENCH_TRACE_OUT=$(CURDIR)/BENCH_trace.json \
		$(GO) test -run TestWriteTraceBenchJSON -count=1 -v ./cmd/ssspd

# Service-level benchmarks: the committed workload specs in
# testdata/workloads (Zipf single-query, batch-heavy, cache-hostile,
# mixed-mutate) run at
# full size against a hermetic ssspd via the open/closed-loop load generator
# (cmd/loadgen), written to BENCH_serve.json. FAILS if any workload violates
# its committed SLO (p99 latency, error rate, achieved-rate fraction) — this
# is the serving-path regression gate.
bench-serve:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run TestWriteServeBenchJSON -count=1 -v ./cmd/ssspd

# Routing-tier benchmark: the committed workload specs run both directly
# against one ssspd and through ssspr fronting two replica backends, written
# to BENCH_router.json. FAILS if any workload violates its SLO through the
# router or the router's best-of-trials p99 overhead over direct exceeds
# 2ms; also records the measured failover re-route latency.
bench-router:
	BENCH_ROUTER_OUT=$(CURDIR)/BENCH_router.json \
		$(GO) test -run TestWriteRouterBenchJSON -count=1 -v -timeout 20m ./cmd/ssspd

# Mutation benchmark: a small additive delta's incremental hierarchy repair
# vs a from-scratch rebuild on the same mutated graph, plus the end-to-end
# generation step and a delete-bearing (general-repair) delta, written to
# BENCH_mutate.json. FAILS if the additive repair is not >= 10x faster than
# the rebuild.
bench-mutate:
	BENCH_MUTATE_OUT=$(CURDIR)/BENCH_mutate.json \
		$(GO) test -run TestWriteMutateBenchJSON -count=1 -v ./internal/mutate

# Cost-model selection benchmark: the stress generator sweep solved by
# every applicable solver, a model fitted from those trace samples, and
# static-policy vs model-driven solver choices priced against the shared
# per-family median table, written to BENCH_costmodel.json. FAILS if the
# model's mean chosen-solver latency is worse than the static policy's, or
# if its choice is >5% slower on any single family.
bench-costmodel:
	BENCH_COSTMODEL_OUT=$(CURDIR)/BENCH_costmodel.json \
		$(GO) test -run TestWriteCostModelBenchJSON -count=1 -v ./cmd/ssspd

# Shrunk always-on slice of bench-serve: every committed workload spec
# parses, matches the bench catalog, and passes its SLO at smoke size.
bench-serve-smoke:
	$(GO) test -run 'TestServeWorkloadSmoke|TestServeWorkloadsExpandDeterministically|TestServeStallInjectionTripsGate' \
		-count=1 ./cmd/ssspd

# Fast pre-merge gate: static checks, the documentation linter, the race
# detector over the concurrent traversal core, the query engine, the graph
# catalog and snapshot format, the tracing layer, the daemon middleware,
# and the routing tier, and the seeded stress sweep.
check:
	$(GO) vet ./...
	$(MAKE) docs-check
	$(GO) test -race ./internal/core/... ./internal/engine/... \
		./internal/catalog/... ./internal/snapshot/... ./internal/trace/... \
		./internal/loadgen/... ./internal/router/... ./internal/mutate/... \
		./internal/costmodel/... ./cmd/ssspd/... ./cmd/ssspr/...
	$(MAKE) bench-serve-smoke
	$(MAKE) stress

# Documentation lint: every intra-repo markdown link must resolve and every
# internal/* package must carry a package comment (see cmd/docscheck).
docs-check:
	$(GO) run ./cmd/docscheck

# Deterministic differential/metamorphic stress sweep, race-enabled: every
# graph family x every solver, cross-checked pairwise, certified, transformed,
# and hammered with concurrent queries. Also replays the regression corpus in
# testdata/stress. Reproduce any reported failure with the printed
# `-replay` command.
STRESS_SEED ?= 1
stress:
	$(GO) test -race -count=1 ./internal/stress ./internal/solver
	$(GO) run -race ./cmd/stress -seed $(STRESS_SEED) -rounds 2 -max-n 192 -quiet

# Short fuzzing passes over the format parsers and the solver cross-checks
# (~10s per target).
fuzz:
	$(GO) test -fuzz FuzzReadGraph -fuzztime 10s ./internal/dimacs
	$(GO) test -fuzz FuzzReadSources -fuzztime 10s ./internal/dimacs
	$(GO) test -fuzz FuzzSnapshotRead -fuzztime 10s ./internal/snapshot
	$(GO) test -fuzz FuzzWorkloadSpec -fuzztime 10s ./internal/loadgen
	$(GO) test -fuzz FuzzMutateRequest -fuzztime 10s ./internal/mutate
	$(GO) test -fuzz FuzzRoutingTable -fuzztime 10s ./internal/router
	$(GO) test -fuzz FuzzCoefficientsFile -fuzztime 10s ./internal/costmodel
	$(GO) test -fuzz FuzzThorupVsDijkstra -fuzztime 10s ./internal/core
	$(GO) test -fuzz FuzzDeltaStepVsDijkstra -fuzztime 10s ./internal/core
	$(GO) test -fuzz FuzzMLBVsDijkstra -fuzztime 10s ./internal/core

# Regenerate every table and figure of the paper at the default scale.
experiments:
	$(GO) run ./cmd/experiments -all -csv results/csv | tee results/experiments-logn16.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/socialnetwork
	$(GO) run ./examples/roadnetwork
	$(GO) run ./examples/manysources
	$(GO) run ./examples/facilities

clean:
	$(GO) clean ./...
