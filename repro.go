// Package repro is a Go implementation of the parallel shortest-path system
// of Crobak, Berry, Madduri and Bader, "Advanced Shortest Paths Algorithms on
// a Massively-Multithreaded Architecture" (IPDPS Workshops / MTAAP 2007): a
// multithreaded version of Thorup's linear-time undirected single-source
// shortest path algorithm built on a shared Component Hierarchy, together
// with every substrate the paper depends on — parallel connected components
// (including an MTGL-style bully kernel), parallel Borůvka spanning forests,
// delta-stepping, Goldberg's multi-level bucket solver, the DIMACS Challenge
// graph generators and file formats, and a simulated Cray MTA-2 cost model
// that reproduces the paper's 40-processor results on commodity hardware.
//
// # Quick start
//
//	g := repro.RandomGraph(1<<16, 1<<18, 1<<16, repro.UWD, 42)
//	h := repro.BuildHierarchy(g)              // shared, immutable
//	solver := repro.NewSolver(h, repro.NewExecRuntime(8))
//	dist := solver.SSSP(0)                    // Thorup SSSP
//
// Many queries can share one hierarchy — the paper's headline use case:
//
//	results := solver.RunMany([]int32{0, 99, 12345})
//
// To reproduce the paper's machine-dependent numbers, run on the simulated
// MTA-2 instead:
//
//	rt := repro.NewSimRuntime(repro.MTA2(40))
//	solver = repro.NewSolver(h, rt)
//	solver.SSSP(0)
//	cycles := rt.SimCost().Span // modelled 40-processor makespan
//
// See cmd/experiments for the per-table/figure reproduction harness and
// DESIGN.md for the system inventory.
package repro

import (
	"io"

	"repro/internal/analytics"
	"repro/internal/bfs"
	"repro/internal/cc"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/dimacs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mlb"
	"repro/internal/mta"
	"repro/internal/par"
	"repro/internal/verify"
)

// Core types, re-exported from the implementation packages.
type (
	// Graph is an immutable undirected weighted graph in CSR form.
	Graph = graph.Graph
	// Edge is one undirected edge (endpoints plus positive weight).
	Edge = graph.Edge
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// Hierarchy is Thorup's Component Hierarchy; build once, share among any
	// number of concurrent queries.
	Hierarchy = ch.Hierarchy
	// HierarchyStats carries the paper's Table 2 statistics.
	HierarchyStats = ch.Stats
	// Runtime executes parallel loops, either on real goroutines or on the
	// simulated MTA-2 cost model.
	Runtime = par.Runtime
	// Machine is a simulated MTA-2 configuration.
	Machine = mta.Machine
	// Solver runs Thorup SSSP queries over a shared Hierarchy.
	Solver = core.Solver
	// Query is the reusable per-query state of one Thorup SSSP computation.
	Query = core.Query
	// SolverOption configures a Solver.
	SolverOption = core.Option
	// Strategy selects how toVisit loops are parallelized.
	Strategy = core.Strategy
	// Thresholds are the selective-parallelization cutoffs (paper §3.3).
	Thresholds = par.Thresholds
	// WeightDist selects an edge-weight distribution.
	WeightDist = gen.WeightDist
	// Instance names a paper-style benchmark instance.
	Instance = gen.Instance
	// DeltaStats reports delta-stepping phase structure.
	DeltaStats = deltastep.Stats
	// Trace carries the per-query event counters of a Thorup run (see
	// Query.EnableTrace), including the propagation-locality metric of the
	// paper's §3.2.
	Trace = core.Trace
)

// Inf is the distance reported for unreachable vertices.
const Inf = graph.Inf

// Weight distributions (paper §4.2).
const (
	// UWD draws weights uniformly from [1, C].
	UWD = gen.UWD
	// PWD draws poly-log weights 2^i, i uniform in [1, log2 C].
	PWD = gen.PWD
)

// toVisit strategies (paper §3.3, Table 6).
const (
	// NaiveStrategy always scans children with an all-processor loop
	// ("Thorup A").
	NaiveStrategy = core.Naive
	// SelectiveStrategy picks the loop regime from the child count
	// ("Thorup B", the paper's recommended configuration).
	SelectiveStrategy = core.Selective
)

// NewBuilder returns a graph builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph directly from an undirected edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// ContractZeroEdges merges vertices joined by zero-weight edges — the
// preprocessing Thorup's algorithm requires when inputs contain zero weights.
// It returns the contracted graph and the vertex mapping.
func ContractZeroEdges(n int, edges []Edge) (*Graph, []int32) {
	return graph.ContractZeroEdges(n, edges)
}

// NewExecRuntime returns a runtime that executes loops on up to workers
// goroutines.
func NewExecRuntime(workers int) *Runtime { return par.NewExec(workers) }

// NewSimRuntime returns a runtime that executes serially while modelling the
// given machine; rt.SimCost().Span is the simulated makespan in cycles.
func NewSimRuntime(m Machine) *Runtime { return par.NewSim(m) }

// MTA2 returns the cost model of a p-processor Cray MTA-2.
func MTA2(p int) Machine { return mta.MTA2(p) }

// BuildHierarchy constructs the Component Hierarchy serially (union-find
// sweep) — the fastest choice on a commodity host.
func BuildHierarchy(g *Graph) *Hierarchy { return ch.BuildKruskal(g) }

// BuildHierarchyParallel constructs the Component Hierarchy with the paper's
// Algorithm 1: log C rounds of parallel connected components (MTGL-style
// bully kernel) and contraction, on the given runtime.
func BuildHierarchyParallel(rt *Runtime, g *Graph) *Hierarchy {
	return ch.BuildNaive(rt, g, cc.Bully)
}

// ConnectedComponents labels the connected components of g (MTGL-style bully
// kernel); it returns a dense labelling and the component count.
func ConnectedComponents(rt *Runtime, g *Graph) ([]int32, int) {
	return cc.Bully(rt, g, cc.All)
}

// NewSolver creates a Thorup SSSP solver over a shared hierarchy.
func NewSolver(h *Hierarchy, rt *Runtime, opts ...SolverOption) *Solver {
	return core.NewSolver(h, rt, opts...)
}

// WithStrategy selects the toVisit strategy.
func WithStrategy(s Strategy) SolverOption { return core.WithStrategy(s) }

// WithThresholds overrides the selective-parallelization thresholds.
func WithThresholds(t Thresholds) SolverOption { return core.WithThresholds(t) }

// TuneThresholds derives selective-parallelization thresholds for a machine
// by simulating the toVisit loop, as the paper did.
func TuneThresholds(m Machine) Thresholds { return core.TuneThresholds(m) }

// SimultaneousCost simulates len(sources) Thorup SSSP queries sharing one
// Component Hierarchy, co-scheduled on the machine (the paper's Figure 5
// experiment). It returns the modelled makespan in cycles plus the per-query
// distances.
func SimultaneousCost(h *Hierarchy, m Machine, sources []int32, opts ...SolverOption) (int64, [][]int64) {
	return core.SimultaneousCost(h, m, sources, opts...)
}

// ThorupSerial runs the plain single-threaded Thorup solver (the paper's
// Table 1 configuration).
func ThorupSerial(h *Hierarchy, src int32) []int64 { return core.SerialSSSP(h, src) }

// Dijkstra computes SSSP with a binary-heap Dijkstra — the reference oracle.
func Dijkstra(g *Graph, src int32) []int64 { return dijkstra.SSSP(g, src) }

// DijkstraTree additionally returns shortest-path-tree parent pointers.
func DijkstraTree(g *Graph, src int32) ([]int64, []int32) {
	return dijkstra.SSSPWithParents(g, src)
}

// DeltaStepping computes SSSP with parallel delta-stepping (Meyer–Sanders),
// the paper's comparison algorithm. Delta <= 0 selects the standard C/degree
// heuristic.
func DeltaStepping(rt *Runtime, g *Graph, src int32, delta int64) []int64 {
	if delta <= 0 {
		delta = deltastep.DefaultDelta(g)
	}
	return deltastep.SSSP(rt, g, src, delta)
}

// DeltaSteppingStats is DeltaStepping returning phase statistics.
func DeltaSteppingStats(rt *Runtime, g *Graph, src int32, delta int64) ([]int64, DeltaStats) {
	if delta <= 0 {
		delta = deltastep.DefaultDelta(g)
	}
	return deltastep.Run(rt, g, src, delta)
}

// MultiLevelBuckets computes SSSP with Goldberg's multi-level bucket
// algorithm (the DIMACS Challenge reference solver, with the caliber
// heuristic).
func MultiLevelBuckets(g *Graph, src int32) []int64 { return mlb.SSSP(g, src) }

// RandomGraph generates the DIMACS random family: a Hamiltonian cycle plus
// m-n random edges (parallel edges and self-loops possible), weights from
// dist over [1, c].
func RandomGraph(n, m int, c uint32, dist WeightDist, seed uint64) *Graph {
	return gen.Random(n, m, c, dist, seed)
}

// RMATGraph generates the DIMACS scale-free (R-MAT) family.
func RMATGraph(n, m int, c uint32, dist WeightDist, seed uint64) *Graph {
	return gen.RMATGraph(n, m, c, dist, seed)
}

// GridGraph generates a rows x cols road-network-like grid.
func GridGraph(rows, cols int, c uint32, dist WeightDist, seed uint64) *Graph {
	return gen.GridGraph(rows, cols, c, dist, seed)
}

// ReadDIMACS parses a 9th-DIMACS-Challenge .gr file.
func ReadDIMACS(r io.Reader) (*Graph, error) { return dimacs.ReadGraph(r) }

// WriteDIMACS emits a graph in .gr format.
func WriteDIMACS(w io.Writer, g *Graph, comment string) error {
	return dimacs.WriteGraph(w, g, comment)
}

// BFSLevels computes breadth-first levels from src with the parallel
// level-synchronous kernel (-1 for unreachable vertices).
func BFSLevels(rt *Runtime, g *Graph, src int32) []int32 {
	return bfs.Parallel(rt, g, src)
}

// STDistance computes the shortest s-t distance with bidirectional Dijkstra —
// the point-to-point query setting of the paper's road-network discussion.
func STDistance(g *Graph, s, t int32) int64 {
	return dijkstra.STDistance(g, s, t)
}

// CertifyDistances verifies in linear time that dist is the exact
// shortest-path labelling of g from the source set (feasibility + tightness +
// exact zero set); it is as strong as re-running Dijkstra.
func CertifyDistances(rt *Runtime, g *Graph, sources []int32, dist []int64) error {
	return verify.Distances(rt, g, sources, dist)
}

// CertifyTree verifies that parent is a valid shortest-path tree for dist.
func CertifyTree(g *Graph, sources []int32, dist []int64, parent []int32) error {
	return verify.Tree(g, sources, dist, parent)
}

// ShortestPath reconstructs the source-to-v path from certified parents; nil
// if v is unreachable.
func ShortestPath(dist []int64, parent []int32, v int32) []int32 {
	return verify.Path(dist, parent, v)
}

// SaveHierarchy persists a Component Hierarchy in the compact binary format
// (checksummed), so the expensive preprocessing can be reused across runs.
func SaveHierarchy(w io.Writer, h *Hierarchy) error {
	_, err := h.WriteTo(w)
	return err
}

// LoadHierarchy restores a hierarchy for g, validating the checksum and every
// structural invariant against the graph.
func LoadHierarchy(r io.Reader, g *Graph) (*Hierarchy, error) {
	return ch.ReadFrom(r, g)
}

// GeometricGraph generates a random geometric graph (points in the unit
// square, edges within radius, distance-proportional weights scaled to c) — a
// road-network surrogate.
func GeometricGraph(n int, radius float64, c uint32, seed uint64) *Graph {
	return gen.Geometric(n, radius, c, seed)
}

// SmallWorldGraph generates a Watts-Strogatz-style small-world graph (ring
// lattice with degree 2k, rewiring probability p).
func SmallWorldGraph(n, k int, p float64, c uint32, dist WeightDist, seed uint64) *Graph {
	return gen.SmallWorld(n, k, p, c, dist, seed)
}

// Closeness computes closeness centrality for the given vertices with one
// batched shared-CH query per vertex (the paper's social-network workload).
func Closeness(s *Solver, vertices []int32) []float64 {
	return analytics.Closeness(s, vertices)
}

// Harmonic computes harmonic centrality (robust to disconnection).
func Harmonic(s *Solver, vertices []int32) []float64 {
	return analytics.Harmonic(s, vertices)
}

// DiameterEstimate lower-bounds the weighted diameter with double sweeps.
func DiameterEstimate(s *Solver, start int32, sweeps int) int64 {
	return analytics.DiameterEstimate(s, start, sweeps)
}

// TopKCloseness returns the k most central of the candidate vertices.
func TopKCloseness(s *Solver, candidates []int32, k int) []int32 {
	return analytics.TopKCloseness(s, candidates, k)
}

// LargestComponent extracts the giant connected component (and the mapping
// back to original vertex ids) — standard preprocessing for analytics.
func LargestComponent(g *Graph) (*Graph, []int32) {
	return cc.LargestComponent(g)
}

// Betweenness estimates betweenness centrality by Brandes' accumulation over
// shortest-path DAGs from the sampled sources (exact with AllSources).
// Scores use the directed-pair convention (each unordered pair counted
// twice).
func Betweenness(s *Solver, sources []int32) []float64 {
	return analytics.Betweenness(s, sources)
}

// AllSources returns [0, n), for exact analytics runs.
func AllSources(n int) []int32 { return analytics.AllSources(n) }
